"""A B+-tree: the paper's reference point for relational 1-d searching.

Section 1.1(3) frames the indexing discussion with "B-trees and their
variants B+-trees are examples of important data structures for
implementing relational databases": with page size B and N tuples, range
search costs O(log_B N + K/B) page accesses and updates O(log_B N).  This
implementation keeps all keys in the leaves (linked left-to-right), stores
separator keys internally, and *counts node accesses* so the benchmark can
measure the claimed access bounds directly, not just wall time.

Keys are arbitrary totally ordered values (rationals in the benchmarks);
duplicates are allowed (each key carries a list of payloads).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list[Any] = []
        self.children: list["_Node"] = []  # internal nodes
        self.values: list[list[Any]] = []  # leaves: payload buckets per key
        self.next: "_Node | None" = None  # leaf chain


@dataclass
class AccessStats:
    """Node-access counters (the paper's page-access currency)."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0


class BPlusTree:
    """A B+-tree with order ``branching`` (max children per internal node)."""

    def __init__(self, branching: int = 16) -> None:
        if branching < 3:
            raise ValueError("branching factor must be at least 3")
        self.branching = branching
        self._root = _Node(leaf=True)
        self._size = 0
        self.stats = AccessStats()

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ find
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        self.stats.reads += 1
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
            self.stats.reads += 1
        return node

    def get(self, key: Any) -> list[Any]:
        """All payloads stored under ``key`` (key-based searching)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_search(self, low: Any, high: Any) -> list[tuple[Any, Any]]:
        """All (key, payload) pairs with ``low <= key <= high``, in key order.

        O(log_B N + K/B) node accesses: one root-to-leaf descent plus a walk
        along the leaf chain.
        """
        if low > high:
            return []
        leaf = self._find_leaf(low)
        result: list[tuple[Any, Any]] = []
        index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return result
                for payload in leaf.values[index]:
                    result.append((key, payload))
                index += 1
            leaf = leaf.next
            if leaf is not None:
                self.stats.reads += 1
            index = 0
        return result

    def items(self) -> Iterator[tuple[Any, Any]]:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            for key, bucket in zip(node.keys, node.values):
                for payload in bucket:
                    yield key, payload
            node = node.next

    # ---------------------------------------------------------------- insert
    def insert(self, key: Any, payload: Any = None) -> None:
        self._size += 1
        split = self._insert(self._root, key, payload)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self.stats.writes += 1

    def _insert(self, node: _Node, key: Any, payload: Any):
        self.stats.writes += 1
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(payload)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [payload])
            if len(node.keys) < self.branching:
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, payload)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) <= self.branching:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node):
        middle = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next = node.next
        node.next = right
        self.stats.writes += 1
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        self.stats.writes += 1
        return separator, right

    # ---------------------------------------------------------------- delete
    def remove(self, key: Any, payload: Any = None) -> bool:
        """Remove one payload under ``key`` (or the whole bucket if payload
        is None and the bucket has one entry).  Underflow is handled lazily
        (nodes may become sparse but never incorrect), which preserves the
        logarithmic search bound in the amortized sense.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        bucket = leaf.values[index]
        if payload is None:
            bucket.pop()
        else:
            try:
                bucket.remove(payload)
            except ValueError:
                return False
        self.stats.writes += 1
        if not bucket:
            leaf.keys.pop(index)
            leaf.values.pop(index)
        self._size -= 1
        return True

    # -------------------------------------------------------------- inspection
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height
