"""Incrementally-maintained join indexes for the Datalog engine.

The paper's Section 1.1(3) generalized 1-d index answers "which generalized
tuples can intersect ``a1 <= x <= a2``" in output-sensitive time.  The
Datalog join is exactly that query in disguise: once the partial conjunction
pins (or interval-bounds) a join variable, only the tuples whose projection
interval meets the bound can extend the join, so scanning the full renamed
choice list wastes work proportional to the relation size.

:class:`JoinIndexPool` owns one :class:`~repro.indexing.generalized_index.
GeneralizedIndex1D` per (relation, attribute) pair, created lazily on the
first probe of that pair and maintained *incrementally* across fixpoint
rounds: generalized relations only ever grow during an evaluation (the
engine merges each round's derivations by ``add``, never ``discard``), and
they iterate in insertion order, so catching an index up is indexing the
suffix of ``relation.tuples()`` past a per-index cursor.  Building from
scratch each round would cost O(total tuples) per round -- the incremental
cursor pays O(new tuples) instead.

**Retraction.**  Incremental view maintenance breaks the append-only
assumption: a retract shrinks the relation, so the suffix cursor would
both miss later appends (the cursor can exceed the new length) and leave
*stale* index entries whose tuples are no longer in the relation --
candidates that are satisfiable with the probe bound but must not join.
Every pool entry therefore remembers the relation's monotone ``removals``
counter; when it moves, the entry's index is rebuilt from current content
(a versioned rebuild, counted in ``rebuilds``).  Rebuilds cost O(relation)
but only fire on retraction, so the append-only fast path is unchanged and
a long run of insert-only maintenance steps never rebuilds.

Thread safety: the parallel round executor probes the pool from worker
threads.  A single lock serializes catch-up and query; probes are
read-mostly after warm-up, and the tree query itself is cheap relative to
the join work it saves.

Soundness: index keys are the *hull* of each tuple's projection
(disequalities relaxed -- see :func:`tuple_projection_interval`), so the
candidate set over-covers and the join's satisfiability check filters false
positives; a tuple compatible with the partial conjunction always has a key
intersecting the probe interval, so there are never false negatives.
"""

from __future__ import annotations

import threading
from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.generalized import GeneralizedRelation, GeneralizedTuple
from repro.indexing.generalized_index import (
    GeneralizedIndex1D,
    tuple_projection_interval,
)
from repro.indexing.interval import Interval


class JoinIndexPool:
    """Per-evaluation pool of generalized 1-d indexes over the world's relations.

    ``supported`` is decided once from the theory (only the dense-order
    theory guarantees single-interval projections); an unsupported pool
    answers every probe with ``None`` so the engine falls back to the scan
    path at zero cost.
    """

    def __init__(self, theory: object) -> None:
        from repro.runtime.chaos import unwrap_theory

        self.supported = isinstance(unwrap_theory(theory), DenseOrderTheory)  # type: ignore[arg-type]
        self._lock = threading.Lock()
        #: (relation name, attribute) ->
        #: [index, cursor into relation.tuples(), relation.removals snapshot]
        self._indexes: dict[tuple[str, str], list] = {}
        #: probes answered / candidate tuples returned / scan entries avoided
        self.probes = 0
        self.candidates = 0
        self.scan_avoided = 0
        #: versioned rebuilds forced by retraction (see module docstring)
        self.rebuilds = 0

    def _catch_up(
        self, entry: list, relation: GeneralizedRelation, attribute: str
    ) -> GeneralizedIndex1D:
        """Bring an entry's index up to the relation's current content.

        Append-only growth indexes the suffix past the cursor; a removal
        event (``relation.removals`` moved) invalidates the suffix scheme
        and rebuilds the index in place.  Callers hold the pool lock.  The
        entry *list* is mutated, never replaced: probe handles share it.
        """
        index, cursor, removals = entry
        if removals != relation.removals:
            index = GeneralizedIndex1D(relation, attribute)
            entry[0] = index
            entry[1] = len(relation)
            entry[2] = relation.removals
            self.rebuilds += 1
        elif cursor < len(relation):
            for item in relation.tuples()[cursor:]:
                index.insert(item)
            entry[1] = len(relation)
        return index

    def probe(
        self,
        relation: GeneralizedRelation,
        attribute: str,
        low: Fraction | None,
        high: Fraction | None,
    ) -> list[GeneralizedTuple] | None:
        """Tuples of ``relation`` whose ``attribute`` projection can meet [low, high].

        Returns ``None`` when indexing does not apply (non-dense theory,
        unknown attribute, or no usable bound) -- the caller scans instead.
        """
        if not self.supported or (low is None and high is None):
            return None
        if attribute not in relation.variables:
            return None
        with self._lock:
            entry = self._indexes.get((relation.name, attribute))
            if entry is None:
                index = GeneralizedIndex1D(relation, attribute)
                entry = [index, len(relation), relation.removals]
                self._indexes[(relation.name, attribute)] = entry
            else:
                index = self._catch_up(entry, relation, attribute)
            hits = index.candidates(low, high)
            self.probes += 1
            self.candidates += len(hits)
            self.scan_avoided += len(relation) - len(hits)
            return hits

    def handle(
        self, relation: GeneralizedRelation, attribute: str
    ) -> IndexProbeHandle | None:
        """A pre-resolved probe for one (relation, attribute) pair.

        Compiled rule closures probe the same pair for every candidate
        entry of a join step; a handle performs the pool's dict lookup
        (and lazy index creation) once, so the per-probe path is just
        catch-up + tree query.  Returns ``None`` exactly when
        :meth:`probe` would (non-dense theory or unknown attribute), and
        answers through the same shared index entry and counters, so
        handle probes and direct probes are interchangeable.
        """
        if not self.supported or attribute not in relation.variables:
            return None
        with self._lock:
            entry = self._indexes.get((relation.name, attribute))
            if entry is None:
                entry = [
                    GeneralizedIndex1D(relation, attribute),
                    len(relation),
                    relation.removals,
                ]
                self._indexes[(relation.name, attribute)] = entry
        return IndexProbeHandle(self, relation, attribute, entry)

    def index_count(self) -> int:
        with self._lock:
            return len(self._indexes)


class IndexProbeHandle:
    """A bound (relation, attribute) probe sharing its pool's index entry."""

    __slots__ = ("_pool", "_relation", "_attribute", "_entry")

    def __init__(
        self,
        pool: JoinIndexPool,
        relation: GeneralizedRelation,
        attribute: str,
        entry: list,
    ) -> None:
        self._pool = pool
        self._relation = relation
        self._attribute = attribute
        self._entry = entry

    def probe(
        self, low: Fraction | None, high: Fraction | None
    ) -> list[GeneralizedTuple] | None:
        """Candidates for [low, high]; ``None`` when there is no usable bound."""
        if low is None and high is None:
            return None
        pool = self._pool
        relation = self._relation
        with pool._lock:
            index = pool._catch_up(self._entry, relation, self._attribute)
            hits = index.candidates(low, high)
            pool.probes += 1
            pool.candidates += len(hits)
            pool.scan_avoided += len(relation) - len(hits)
            return hits


def shard_hull_key(
    theory: object, item: GeneralizedTuple
) -> tuple[str, float] | None:
    """An affinity key for routing a shard that starts at ``item``.

    The sharded executor (:mod:`repro.runtime.cluster`) range-partitions
    dense-order work by the hull of each slice's first tuple -- the same
    projection-interval hull the 1-d index keys on -- so slices covering
    nearby regions of the order land on the same worker and its theory
    caches stay hot.  For theories without interval projections (equality,
    boolean) the key is a stable content hash for hash partitioning.

    Affinity only: the deterministic merge is by shard order, so a key of
    any quality (or ``None``: round-robin) never affects results.
    """
    from zlib import crc32

    from repro.runtime.chaos import unwrap_theory

    base = unwrap_theory(theory)  # type: ignore[arg-type]
    if isinstance(base, DenseOrderTheory) and item.variables:
        interval = tuple_projection_interval(item, item.variables[0], base)
        if interval is not None:
            low = interval.low
            high = interval.high
            if low is not None and high is not None:
                return ("range", float((low + high) / 2))
            if low is not None:
                return ("range", float(low))
            if high is not None:
                return ("range", float(high))
        return None
    digest = crc32("|".join(sorted(str(a) for a in item.atoms)).encode())
    return ("hash", float(digest))
