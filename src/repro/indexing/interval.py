"""Intervals with rational endpoints: the generalized keys of Section 1.1(3).

"The two endpoint a, a' representation of an interval is a fixed length
generalized key."  Endpoints may be open or closed and possibly infinite
(None), because dense-order generalized tuples project to any of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any


@dataclass(frozen=True)
class Interval:
    """An interval with optionally-open, optionally-infinite endpoints."""

    low: Fraction | None  # None = -infinity
    high: Fraction | None  # None = +infinity
    low_open: bool = False
    high_open: bool = False
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None:
            if self.low > self.high:
                raise ValueError(f"empty interval [{self.low}, {self.high}]")
            if self.low == self.high and (self.low_open or self.high_open):
                raise ValueError("degenerate open interval is empty")

    @staticmethod
    def closed(low: int | Fraction, high: int | Fraction, payload: Any = None) -> "Interval":
        return Interval(Fraction(low), Fraction(high), payload=payload)

    @staticmethod
    def point(value: int | Fraction, payload: Any = None) -> "Interval":
        return Interval(Fraction(value), Fraction(value), payload=payload)

    def contains(self, value: Fraction) -> bool:
        if self.low is not None:
            if value < self.low or (self.low_open and value == self.low):
                return False
        if self.high is not None:
            if value > self.high or (self.high_open and value == self.high):
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return not (self._entirely_below(other) or other._entirely_below(self))

    def _entirely_below(self, other: "Interval") -> bool:
        if self.high is None or other.low is None:
            return False
        if self.high < other.low:
            return True
        if self.high == other.low and (self.high_open or other.low_open):
            return True
        return False

    def sort_key(self) -> tuple:
        low_key = (
            (0, Fraction(0)) if self.low is None else (1, self.low)
        )
        return (low_key, self.low_open)

    def __str__(self) -> str:
        left = "(" if self.low_open or self.low is None else "["
        right = ")" if self.high_open or self.high is None else "]"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"{left}{low}, {high}{right}"
