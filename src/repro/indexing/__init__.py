"""Generalized 1-dimensional indexing (Section 1.1, point (3)).

The paper observes that when every generalized tuple's projection onto an
attribute x is one interval, 1-dimensional searching on a generalized
database attribute reduces to *dynamic interval intersection* -- a special
case of 2-dimensional searching ("1.5-dimensional searching") with classical
solutions: priority search trees (McCreight) in-core, grid files/R-trees in
secondary storage.  This package provides:

* :mod:`repro.indexing.bptree` -- a B+-tree with node-access counters, the
  paper's reference structure for *relational* 1-d searching (O(log_B N +
  K/B) accesses);
* :mod:`repro.indexing.interval` -- rational endpoint intervals (the
  fixed-length *generalized keys*);
* :mod:`repro.indexing.interval_tree` -- a dynamic AVL-balanced augmented
  interval tree: O(log N) insert/delete, O(log N + K) stabbing and overlap
  queries;
* :mod:`repro.indexing.priority_search_tree` -- McCreight's priority search
  tree over (x, y) points, with the classical interval-stabbing embedding;
* :mod:`repro.indexing.generalized_index` -- the generalized 1-dimensional
  index of the paper: projection of generalized tuples to interval keys,
  indexed search that conjoins the range constraint to matching tuples only,
  insert/delete, plus the naive linear-scan baseline it is benchmarked
  against.
"""

from repro.indexing.bptree import BPlusTree
from repro.indexing.generalized_index import (
    GeneralizedIndex1D,
    NaiveGeneralizedSearch,
    tuple_projection_interval,
)
from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree
from repro.indexing.priority_search_tree import PrioritySearchTree

__all__ = [
    "BPlusTree",
    "GeneralizedIndex1D",
    "Interval",
    "IntervalTree",
    "NaiveGeneralizedSearch",
    "PrioritySearchTree",
    "tuple_projection_interval",
]
