"""McCreight's priority search tree (reference [41] of the paper).

A PST stores points (x, y): a balanced binary search tree on x doubling as a
min-heap on y.  It answers the 1.5-dimensional query "all points with
x in [x1, x2] and y <= y0" in O(log N + K), with linear space -- "priority
search trees are a linear space data structure with logarithmic-time update
and search algorithms for in-core processing" (Section 1.1(3)).

Interval stabbing embeds into this query: store interval (l, h) as the point
(x, y) = (l, ...) -- here we use x = low, y = low and query ... -- concretely,
to find intervals containing q, store point (x=low, y=-high) and ask for
x <= q and -high <= -q, i.e. x in (-inf, q], y <= -q.  The helper
:meth:`PrioritySearchTree.stab_intervals` packages this.

This implementation is semi-dynamic: built in O(N log N) from a point set,
with O(log N + K) queries; insertions trigger amortized rebuilding (the
classical fully-dynamic balancing is orthogonal to the paper's point).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable

from repro.indexing.interval import Interval


@dataclass(frozen=True)
class Point:
    x: Fraction
    y: Fraction
    payload: Any = None


class _PSTNode:
    __slots__ = ("point", "split", "left", "right")

    def __init__(self, point: Point, split: Fraction) -> None:
        self.point = point  # the minimum-y point of this subtree
        self.split = split  # x values <= split go left
        self.left: "_PSTNode | None" = None
        self.right: "_PSTNode | None" = None


def _build(points: list[Point]) -> "_PSTNode | None":
    """Recursive construction: pull out the min-y point, split the rest by
    median x."""
    if not points:
        return None
    heap_index = min(range(len(points)), key=lambda i: (points[i].y, points[i].x))
    heap_point = points[heap_index]
    rest = points[:heap_index] + points[heap_index + 1:]
    if not rest:
        return _PSTNode(heap_point, heap_point.x)
    rest.sort(key=lambda p: (p.x, p.y))
    mid = (len(rest) - 1) // 2
    split = rest[mid].x
    node = _PSTNode(heap_point, split)
    node.left = _build([p for p in rest if p.x <= split])
    node.right = _build([p for p in rest if p.x > split])
    return node


class PrioritySearchTree:
    """A priority search tree over exact rational points."""

    def __init__(self, points: Iterable[Point] = ()) -> None:
        self._points = list(points)
        self._root = _build(list(self._points))
        self._pending = 0

    def __len__(self) -> int:
        return len(self._points)

    @staticmethod
    def from_xy(pairs: Iterable[tuple[Fraction, Fraction]]) -> "PrioritySearchTree":
        return PrioritySearchTree(Point(Fraction(x), Fraction(y)) for x, y in pairs)

    # ---------------------------------------------------------------- update
    def insert(self, point: Point) -> None:
        """Amortized insertion: rebuild when pending updates reach len/2."""
        self._points.append(point)
        self._pending += 1
        if self._pending * 2 >= max(4, len(self._points)):
            self._root = _build(list(self._points))
            self._pending = 0
        else:
            # cheap path: insert by re-threading the heap along the x path
            self._root = _build(list(self._points)) if self._root is None else self._root
            self._insert_path(point)

    def _insert_path(self, point: Point) -> None:
        node = self._root
        assert node is not None
        carried = point
        while True:
            if (carried.y, carried.x) < (node.point.y, node.point.x):
                node.point, carried = carried, node.point
            if carried.x <= node.split:
                if node.left is None:
                    node.left = _PSTNode(carried, carried.x)
                    return
                node = node.left
            else:
                if node.right is None:
                    node.right = _PSTNode(carried, carried.x)
                    return
                node = node.right

    def remove(self, point: Point) -> bool:
        try:
            self._points.remove(point)
        except ValueError:
            return False
        self._root = _build(list(self._points))
        self._pending = 0
        return True

    # ---------------------------------------------------------------- queries
    def query(
        self,
        x_low: Fraction | None,
        x_high: Fraction | None,
        y_max: Fraction,
    ) -> list[Point]:
        """All points with ``x_low <= x <= x_high`` and ``y <= y_max``."""
        result: list[Point] = []
        self._query(self._root, x_low, x_high, y_max, result)
        return result

    def _query(
        self,
        node: "_PSTNode | None",
        x_low: Fraction | None,
        x_high: Fraction | None,
        y_max: Fraction,
        out: list[Point],
    ) -> None:
        if node is None:
            return
        if node.point.y > y_max:
            return  # heap property: whole subtree exceeds the y bound
        point = node.point
        if (x_low is None or point.x >= x_low) and (
            x_high is None or point.x <= x_high
        ):
            out.append(point)
        if x_low is None or x_low <= node.split:
            self._query(node.left, x_low, x_high, y_max, out)
        if x_high is None or x_high > node.split:
            self._query(node.right, x_low, x_high, y_max, out)

    # ------------------------------------------------- interval stabbing view
    @staticmethod
    def for_intervals(intervals: Iterable[Interval]) -> "PrioritySearchTree":
        """Index closed intervals for stabbing queries.

        Interval [l, h] maps to the point (x, y) = (l, -h); the stabbing
        query at q is then x <= q and y <= -q.
        """
        points = []
        for interval in intervals:
            if interval.low is None or interval.high is None:
                raise ValueError("PST stabbing view needs bounded intervals")
            points.append(Point(interval.low, -interval.high, interval))
        return PrioritySearchTree(points)

    def stab_intervals(self, value: Fraction | int) -> list[Interval]:
        """All indexed intervals containing ``value`` (closed-endpoint view)."""
        value = Fraction(value)
        hits = self.query(None, value, -value)
        return [p.payload for p in hits]
