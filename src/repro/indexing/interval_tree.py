"""A dynamic interval tree: AVL-balanced BST augmented with subtree max-high.

The classical structure for "on-line intersections in a dynamic set of
intervals" the paper reduces generalized 1-dimensional searching to:
O(log N) insert and delete, O(log N + K) stabbing and interval-overlap
queries, linear space.  Intervals are keyed by their lower endpoint; every
node maintains the maximum upper endpoint of its subtree, which prunes the
search ("the left subtree cannot contain an interval reaching the query").

Endpoints are exact rationals; None encodes the infinities, and open
endpoints are handled exactly (an interval (a, b) does not contain a).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.indexing.interval import Interval

#: key used for max-high comparisons: None (=+inf) beats everything
_HighKey = tuple[int, Fraction]


def _high_key(interval: Interval) -> _HighKey:
    if interval.high is None:
        return (1, Fraction(0))
    return (0, interval.high)


def _max_high(a: _HighKey, b: _HighKey) -> _HighKey:
    return a if a >= b else b


class _Node:
    __slots__ = ("interval", "left", "right", "height", "max_high", "bucket")

    def __init__(self, interval: Interval) -> None:
        self.interval = interval
        self.bucket: list[Interval] = [interval]  # same-key intervals
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1
        self.max_high = _high_key(interval)

    @property
    def key(self) -> tuple:
        return self.interval.sort_key()


def _height(node: _Node | None) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    best = max(_high_key(i) for i in node.bucket)
    if node.left:
        best = _max_high(best, node.left.max_high)
    if node.right:
        best = _max_high(best, node.right.max_high)
    node.max_high = best


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _balance(node: _Node) -> _Node:
    _update(node)
    delta = _height(node.left) - _height(node.right)
    if delta > 1:
        assert node.left is not None
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if delta < -1:
        assert node.right is not None
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class IntervalTree:
    """A dynamic set of intervals with logarithmic-time search and update."""

    def __init__(self, intervals: Iterator[Interval] | list[Interval] = ()) -> None:
        self._root: _Node | None = None
        self._size = 0
        for interval in intervals:
            self.insert(interval)

    def __len__(self) -> int:
        return self._size

    # ---------------------------------------------------------------- update
    def insert(self, interval: Interval) -> None:
        self._root = self._insert(self._root, interval)
        self._size += 1

    def _insert(self, node: _Node | None, interval: Interval) -> _Node:
        if node is None:
            return _Node(interval)
        key = interval.sort_key()
        if key == node.key:
            node.bucket.append(interval)
            _update(node)
            return node
        if key < node.key:
            node.left = self._insert(node.left, interval)
        else:
            node.right = self._insert(node.right, interval)
        return _balance(node)

    def remove(self, interval: Interval) -> bool:
        """Remove one occurrence of an equal interval; returns success."""
        removed, self._root = self._remove(self._root, interval)
        if removed:
            self._size -= 1
        return removed

    def _remove(
        self, node: _Node | None, interval: Interval
    ) -> tuple[bool, _Node | None]:
        if node is None:
            return False, None
        key = interval.sort_key()
        if key < node.key:
            removed, node.left = self._remove(node.left, interval)
        elif key > node.key:
            removed, node.right = self._remove(node.right, interval)
        else:
            # prefer an exact payload match, else any interval with equal
            # endpoints (Interval equality ignores payloads)
            match = next(
                (
                    i
                    for i in node.bucket
                    if i == interval and i.payload == interval.payload
                ),
                None,
            )
            if match is None:
                match = next((i for i in node.bucket if i == interval), None)
            if match is None:
                return False, node
            # remove by identity: list.remove compares with ==, which ignores
            # payloads and could evict a same-endpoint interval of another
            # payload from the bucket
            for position, existing in enumerate(node.bucket):
                if existing is match:
                    del node.bucket[position]
                    break
            removed = True
            if not node.bucket:
                return True, self._drop_node(node)
        if removed:
            return True, _balance(node)
        return False, node

    def _drop_node(self, node: _Node) -> _Node | None:
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        # splice out the successor (leftmost of the right subtree) and put it
        # in this node's place, rebalancing along the extraction path
        successor, new_right = self._remove_min(node.right)
        successor.left = node.left
        successor.right = new_right
        return _balance(successor)

    def _remove_min(self, node: _Node) -> tuple[_Node, _Node | None]:
        if node.left is None:
            return node, node.right
        minimum, node.left = self._remove_min(node.left)
        return minimum, _balance(node)

    # ---------------------------------------------------------------- queries
    def stab(self, value: Fraction | int) -> list[Interval]:
        """All intervals containing ``value``."""
        value = Fraction(value)
        result: list[Interval] = []
        self._stab(self._root, value, result)
        return result

    def _stab(self, node: _Node | None, value: Fraction, out: list[Interval]) -> None:
        if node is None:
            return
        # prune: nothing in this subtree reaches up to `value`
        high_kind, high_value = node.max_high
        if high_kind == 0 and high_value < value:
            return
        self._stab(node.left, value, out)
        for interval in node.bucket:
            if interval.contains(value):
                out.append(interval)
        # intervals in the right subtree start at keys >= node's; they can
        # contain `value` only if their low <= value
        low = node.interval.low
        if low is None or low <= value:
            self._stab(node.right, value, out)

    def overlapping(self, query: Interval) -> list[Interval]:
        """All intervals overlapping the query interval."""
        result: list[Interval] = []
        self._overlap(self._root, query, result)
        return result

    def _overlap(self, node: _Node | None, query: Interval, out: list[Interval]) -> None:
        if node is None:
            return
        if query.low is not None:
            high_kind, high_value = node.max_high
            if high_kind == 0 and high_value < query.low:
                return
        self._overlap(node.left, query, out)
        for interval in node.bucket:
            if interval.overlaps(query):
                out.append(interval)
        low = node.interval.low
        if query.high is None or low is None or low <= query.high:
            self._overlap(node.right, query, out)

    def items(self) -> list[Interval]:
        result: list[Interval] = []

        def walk(node: _Node | None) -> None:
            if node is None:
                return
            walk(node.left)
            result.extend(node.bucket)
            walk(node.right)

        walk(self._root)
        return result

    def height(self) -> int:
        return _height(self._root)
