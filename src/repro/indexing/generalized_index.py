"""The generalized 1-dimensional index of Section 1.1(3).

"A generalized 1-dimensional index is a set of intervals, where each
interval is associated with a generalized tuple.  Each interval in the index
is the projection on x of its associated generalized tuple."  Searching for
``a1 <= x <= a2`` conjoins the range constraint to *only those generalized
tuples whose generalized keys intersect it*; insertion and deletion maintain
the interval set.

The projection of a dense-order generalized tuple on an attribute is always
one interval (the conjunction describes an order-convex set), computed here
by the theory's quantifier elimination.  A naive baseline
(:class:`NaiveGeneralizedSearch`) performs the paper's "trivial, but
inefficient, solution": add the constraint to every tuple and scan.
"""

from __future__ import annotations

from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory, OrderAtom, ge, le
from repro.constraints.terms import Const, Var
from repro.core.generalized import GeneralizedRelation, GeneralizedTuple
from repro.errors import EvaluationError
from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree


def tuple_projection_interval(
    item: GeneralizedTuple, attribute: str, theory: DenseOrderTheory
) -> Interval | None:
    """The projection of a generalized tuple onto one attribute, as an interval.

    Returns None for an unsatisfiable tuple.  For the dense-order theory the
    projection is exactly one (possibly unbounded, possibly degenerate)
    interval.
    """
    if not theory.is_satisfiable(item.atoms):
        return None
    # drop disequalities up front: a punctured interval's *key* is its hull
    # (keys may over-cover -- the search conjoins the true constraints, so
    # false positives are filtered, never false negatives)
    relaxed = tuple(
        atom for atom in item.atoms if getattr(atom, "op", None) != "!="
    )
    drop = [v for v in item.variables if v != attribute]
    projected = theory.eliminate(relaxed, drop)
    if not projected:
        return None
    (conjunction,) = projected
    low: Fraction | None = None
    low_open = False
    high: Fraction | None = None
    high_open = False
    for atom in conjunction:
        assert isinstance(atom, OrderAtom)
        terms = (atom.left, atom.right)
        if atom.op == "!=":
            continue  # a single puncture does not change the key interval
        if isinstance(atom.left, Var) and isinstance(atom.right, Const):
            bound = atom.right.value
            if atom.op == "=":
                low = high = bound
                low_open = high_open = False
                break
            if high is None or bound < high or (bound == high and atom.op == "<"):
                high, high_open = bound, atom.op == "<"
        elif isinstance(atom.left, Const) and isinstance(atom.right, Var):
            bound = atom.left.value
            if atom.op == "=":
                low = high = bound
                low_open = high_open = False
                break
            if low is None or bound > low or (bound == low and atom.op == "<"):
                low, low_open = bound, atom.op == "<"
    return Interval(low, high, low_open, high_open, payload=item)


class GeneralizedIndex1D:
    """An interval-tree-backed index over one attribute of a generalized relation."""

    def __init__(self, relation: GeneralizedRelation, attribute: str) -> None:
        if attribute not in relation.variables:
            raise EvaluationError(
                f"{attribute!r} is not an attribute of {relation.name}"
            )
        from repro.runtime.chaos import unwrap_theory

        if not isinstance(unwrap_theory(relation.theory), DenseOrderTheory):
            raise EvaluationError(
                "generalized 1-d indexing requires interval projections; "
                "only the dense-order theory guarantees them here"
            )
        self.relation = relation
        self.attribute = attribute
        self.theory = relation.theory
        self._tree = IntervalTree()
        for item in relation:
            self.insert(item)

    def __len__(self) -> int:
        return len(self._tree)

    # ----------------------------------------------------------------- update
    def insert(self, item: GeneralizedTuple) -> None:
        """Insert a generalized tuple: compute its key interval, index it."""
        key = tuple_projection_interval(item, self.attribute, self.theory)
        if key is not None:
            self._tree.insert(key)

    def delete(self, item: GeneralizedTuple) -> bool:
        key = tuple_projection_interval(item, self.attribute, self.theory)
        if key is None:
            return False
        return self._tree.remove(key)

    # ----------------------------------------------------------------- search
    def search(
        self,
        low: Fraction | int | None,
        high: Fraction | int | None,
        name: str = "search_result",
    ) -> GeneralizedRelation:
        """The generalized database representing tuples with x in [low, high].

        Only the tuples whose key intervals intersect the query range are
        touched; the range constraint is conjoined to each.
        """
        query = Interval(
            Fraction(low) if low is not None else None,
            Fraction(high) if high is not None else None,
        )
        result = GeneralizedRelation(
            name, self.relation.variables, self.theory
        )
        range_atoms = []
        if low is not None:
            range_atoms.append(ge(self.attribute, Fraction(low)))
        if high is not None:
            range_atoms.append(le(self.attribute, Fraction(high)))
        for hit in self._tree.overlapping(query):
            item: GeneralizedTuple = hit.payload
            result.add_tuple(tuple(item.atoms) + tuple(range_atoms))
        return result

    def candidates(self, low, high) -> list[GeneralizedTuple]:
        """The matching tuples only (no constraint rewrite) -- for benchmarks."""
        query = Interval(
            Fraction(low) if low is not None else None,
            Fraction(high) if high is not None else None,
        )
        return [hit.payload for hit in self._tree.overlapping(query)]


class NaiveGeneralizedSearch:
    """The paper's strawman: conjoin the range constraint to *every* tuple."""

    def __init__(self, relation: GeneralizedRelation, attribute: str) -> None:
        self.relation = relation
        self.attribute = attribute
        self.theory = relation.theory

    def search(
        self,
        low: Fraction | int | None,
        high: Fraction | int | None,
        name: str = "naive_result",
    ) -> GeneralizedRelation:
        result = GeneralizedRelation(name, self.relation.variables, self.theory)
        range_atoms = []
        if low is not None:
            range_atoms.append(ge(self.attribute, Fraction(low)))
        if high is not None:
            range_atoms.append(le(self.attribute, Fraction(high)))
        for item in self.relation:
            result.add_tuple(tuple(item.atoms) + tuple(range_atoms))
        return result

    def candidates(self, low, high) -> list[GeneralizedTuple]:
        """Linear scan with per-tuple satisfiability checks."""
        range_atoms = []
        if low is not None:
            range_atoms.append(ge(self.attribute, Fraction(low)))
        if high is not None:
            range_atoms.append(le(self.attribute, Fraction(high)))
        return [
            item
            for item in self.relation
            if self.theory.is_satisfiable(tuple(item.atoms) + tuple(range_atoms))
        ]
