"""Constraint theories for the CQL framework (Definition 1.2 of the paper).

Each theory packages, behind the :class:`~repro.constraints.base.ConstraintTheory`
interface, everything the generic evaluators need:

* atom validation, negation (into a disjunction of atoms), ground evaluation;
* satisfiability and entailment of conjunctions;
* canonicalization of conjunctions (for duplicate elimination and fixpoint
  termination);
* quantifier elimination of a conjunction (the nontrivial "projection"
  operation of the generalized relational algebra, Section 2.1).

Theories provided:

* :class:`~repro.constraints.dense_order.DenseOrderTheory` -- dense linear
  order inequality constraints over the rationals (Section 3);
* :class:`~repro.constraints.equality.EqualityTheory` -- equality constraints
  over an infinite domain (Section 4);
* :class:`~repro.constraints.real_poly.RealPolynomialTheory` -- real
  polynomial inequality constraints (Section 2);
* :class:`~repro.constraints.boolean.BooleanTheory` -- boolean equality
  constraints over a free boolean algebra (Section 5).
"""

from repro.constraints.base import (
    ConjunctionContext,
    ConstraintTheory,
    TheoryCache,
    TheoryCacheStats,
)
from repro.constraints.boolean import BooleanConstraintAtom, BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory, OrderAtom
from repro.constraints.equality import EqualityAtom, EqualityTheory
from repro.constraints.real_poly import PolyAtom, RealPolynomialTheory
from repro.constraints.terms import Const, Term, Var, term_str

__all__ = [
    "BooleanConstraintAtom",
    "BooleanTheory",
    "ConjunctionContext",
    "Const",
    "ConstraintTheory",
    "TheoryCache",
    "TheoryCacheStats",
    "DenseOrderTheory",
    "EqualityAtom",
    "EqualityTheory",
    "OrderAtom",
    "PolyAtom",
    "RealPolynomialTheory",
    "Term",
    "Var",
    "term_str",
]
