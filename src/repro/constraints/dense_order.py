"""Dense linear order inequality constraints (Definition 1.2.2, Section 3).

Atoms have the form ``x theta y`` and ``x theta c`` where ``theta`` is one of
``=, <, <=`` or a negation ``!=, >, >=``; variables range over a countably
infinite dense linear order without endpoints (we use the rationals, as the
paper does -- "r-configuration" stands for rational configuration).

The satisfiability, entailment, canonicalization and quantifier-elimination
procedures implemented here are the engine room of Sections 3.1-3.3:

* satisfiability is decided by the classical order-graph argument: collapse
  strongly connected components of the weak-inequality graph, then reject
  strict edges or disequalities inside a component;
* quantifier elimination uses *density*: ``exists x (l < x and x < u)`` holds
  iff ``l < u``, so eliminating a variable combines each lower bound with
  each upper bound, and disequalities on the eliminated variable vanish
  (an open interval of a dense order is infinite);
* canonical forms are *minimal networks*: for every pair of terms we compute,
  by exact satisfiability probes, which of ``<, =, >`` are realizable, emit
  the strongest implied atom, and prune entailed atoms.  Two satisfiable
  conjunctions with the same solution set and term set canonicalize
  identically, which is what the Datalog fixpoint (Theorem 3.14.2) relies on
  for termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from repro.constraints.base import Conjunction, ConjunctionContext, ConstraintTheory
from repro.constraints.terms import (
    Const,
    Term,
    Var,
    as_term,
    eval_term,
    rename_term,
    term_sort_key,
)
from repro.errors import TheoryError
from repro.logic.syntax import Atom, Formula, Or

#: atom comparison operators, already normalized (``>``/``>=`` are stored flipped)
_OPS = ("<", "<=", "=", "!=")

_SYMMETRIC = {"=", "!="}


@dataclass(frozen=True, slots=True)
class OrderAtom(Atom):
    """An atom ``left op right`` of the dense-order theory.

    ``op`` is one of ``<``, ``<=``, ``=``, ``!=``.  Construction normalizes:
    ``>`` and ``>=`` must be expressed by swapping the operands (the
    constructors :func:`lt`, :func:`le`, :func:`gt`, :func:`ge`, :func:`eq`,
    :func:`ne` do this), and the operands of the symmetric operators are
    stored in sorted order so that syntactic equality is insensitive to
    argument order.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TheoryError(f"bad dense-order operator {self.op!r}")
        if self.op in _SYMMETRIC:
            if term_sort_key(self.right) < term_sort_key(self.left):
                left, right = self.right, self.left
                object.__setattr__(self, "left", left)
                object.__setattr__(self, "right", right)
        for term in (self.left, self.right):
            if isinstance(term, Const) and not isinstance(term.value, Fraction):
                raise TheoryError(
                    f"dense-order constants must be Fractions, got {term.value!r}"
                )

    def variables(self) -> frozenset[str]:
        names = set()
        for term in (self.left, self.right):
            if isinstance(term, Var):
                names.add(term.name)
        return frozenset(names)

    def rename(self, mapping: Mapping[str, str]) -> "OrderAtom":
        return OrderAtom(
            self.op, rename_term(self.left, mapping), rename_term(self.right, mapping)
        )

    def holds(self, assignment: Mapping[str, Any]) -> bool:
        lhs = eval_term(self.left, assignment)
        rhs = eval_term(self.right, assignment)
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == "=":
            return lhs == rhs
        return lhs != rhs

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def lt(left: object, right: object) -> OrderAtom:
    """``left < right``"""
    return OrderAtom("<", as_term(left), as_term(right))


def le(left: object, right: object) -> OrderAtom:
    """``left <= right``"""
    return OrderAtom("<=", as_term(left), as_term(right))


def gt(left: object, right: object) -> OrderAtom:
    """``left > right`` (stored as ``right < left``)"""
    return OrderAtom("<", as_term(right), as_term(left))


def ge(left: object, right: object) -> OrderAtom:
    """``left >= right`` (stored as ``right <= left``)"""
    return OrderAtom("<=", as_term(right), as_term(left))


def eq(left: object, right: object) -> OrderAtom:
    """``left = right``"""
    return OrderAtom("=", as_term(left), as_term(right))


def ne(left: object, right: object) -> OrderAtom:
    """``left != right``"""
    return OrderAtom("!=", as_term(left), as_term(right))


def between(var: object, low: object, high: object, strict: bool = False) -> list[OrderAtom]:
    """Constraints placing ``var`` in the interval [low, high] (or open)."""
    if strict:
        return [lt(low, var), lt(var, high)]
    return [le(low, var), le(var, high)]


class _Closure:
    """Order-graph closure of a conjunction of dense-order atoms.

    Exposes: consistency, the equivalence classes of forced-equal terms, and
    the strongest *path-derived* relation between any two terms.  The
    closure decides satisfiability exactly (the classical order-graph
    argument); rows of the reachability matrices are stored as integer
    bitmasks so the Warshall closure runs on machine words.
    """

    def __init__(self, atoms: Sequence[OrderAtom]) -> None:
        self.satisfiable = True
        terms: set[Term] = set()
        for atom in atoms:
            terms.add(atom.left)
            terms.add(atom.right)
        self.terms: list[Term] = sorted(terms, key=term_sort_key)
        self._index = {t: i for i, t in enumerate(self.terms)}
        n = len(self.terms)
        # row bitmasks: bit j of weak[i] means i <= j known; same for strict
        self._weak = [0] * n
        self._strict = [0] * n
        self._neq: set[tuple[int, int]] = set()
        constants = [
            (i, t.value) for i, t in enumerate(self.terms) if isinstance(t, Const)
        ]
        for ci, cv in constants:
            for dj, dv in constants:
                if cv < dv:
                    self._strict[ci] |= 1 << dj
                    self._weak[ci] |= 1 << dj
        for atom in atoms:
            i = self._index[atom.left]
            j = self._index[atom.right]
            if atom.op == "<":
                self._strict[i] |= 1 << j
                self._weak[i] |= 1 << j
            elif atom.op == "<=":
                self._weak[i] |= 1 << j
            elif atom.op == "=":
                self._weak[i] |= 1 << j
                self._weak[j] |= 1 << i
            else:
                self._neq.add((min(i, j), max(i, j)))
        self._close()

    def _close(self) -> None:
        n = len(self.terms)
        weak, strict = self._weak, self._strict
        changed = True
        while changed:
            # Warshall closure on bitmask rows, tracking strictness: a path
            # is strict if any edge on it is strict.
            for k in range(n):
                bit = 1 << k
                wk = weak[k]
                sk = strict[k]
                for i in range(n):
                    if weak[i] & bit:
                        weak[i] |= wk
                        strict[i] |= sk
                        if strict[i] & bit:
                            strict[i] |= wk
            changed = False
            # Disequality strengthening: i <= j and i != j imply i < j.
            for (i, j) in self._neq:
                if weak[i] & (1 << j) and not strict[i] & (1 << j):
                    strict[i] |= 1 << j
                    changed = True
                if weak[j] & (1 << i) and not strict[j] & (1 << i):
                    strict[j] |= 1 << i
                    changed = True
        for i in range(n):
            if strict[i] & (1 << i):
                self.satisfiable = False
                return
        for (i, j) in self._neq:
            if weak[i] & (1 << j) and weak[j] & (1 << i):
                self.satisfiable = False
                return

    def equal(self, a: Term, b: Term) -> bool:
        """Whether the conjunction forces ``a = b``."""
        i, j = self._index[a], self._index[b]
        return bool(self._weak[i] & (1 << j)) and bool(self._weak[j] & (1 << i))

    def strictly_less(self, a: Term, b: Term) -> bool:
        i, j = self._index[a], self._index[b]
        return bool(self._strict[i] & (1 << j))

    def weakly_less(self, a: Term, b: Term) -> bool:
        i, j = self._index[a], self._index[b]
        return bool(self._weak[i] & (1 << j))

    def not_equal(self, a: Term, b: Term) -> bool:
        i, j = self._index[a], self._index[b]
        if self._strict[i] & (1 << j) or self._strict[j] & (1 << i):
            return True
        return (min(i, j), max(i, j)) in self._neq

    # ------------------------------------------------- incremental extension
    def extended(self, atoms: Sequence[OrderAtom]) -> "_Closure":
        """A new closure for this conjunction extended by ``atoms``.

        Copies the parent's reachability rows and propagates only the new
        edges (Italiano-style incremental transitive closure), instead of
        re-running the full Warshall loop over the whole conjunction.  The
        depth-first Datalog join extends one tuple at a time, so each level
        pays for its own atoms only.
        """
        clone = _Closure.__new__(_Closure)
        clone.satisfiable = self.satisfiable
        clone.terms = list(self.terms)
        clone._index = dict(self._index)
        clone._weak = list(self._weak)
        clone._strict = list(self._strict)
        clone._neq = set(self._neq)
        if not clone.satisfiable:
            # monotone: extending an inconsistent conjunction stays
            # inconsistent, no propagation needed
            return clone
        new_terms: list[Term] = []
        for atom in atoms:
            for term in (atom.left, atom.right):
                if term not in clone._index:
                    clone._index[term] = len(clone.terms)
                    clone.terms.append(term)
                    clone._weak.append(0)
                    clone._strict.append(0)
                    new_terms.append(term)
        edges: list[tuple[int, int, bool]] = []
        for term in new_terms:
            if isinstance(term, Const):
                i = clone._index[term]
                for other in clone.terms:
                    if isinstance(other, Const) and other is not term:
                        j = clone._index[other]
                        if term.value < other.value:
                            edges.append((i, j, True))
                        elif other.value < term.value:
                            edges.append((j, i, True))
        for atom in atoms:
            i = clone._index[atom.left]
            j = clone._index[atom.right]
            if atom.op == "<":
                edges.append((i, j, True))
            elif atom.op == "<=":
                edges.append((i, j, False))
            elif atom.op == "=":
                edges.append((i, j, False))
                edges.append((j, i, False))
            else:
                clone._neq.add((min(i, j), max(i, j)))
        clone._insert_edges(edges)
        return clone

    def _insert_edges(self, edges: list[tuple[int, int, bool]]) -> None:
        """Insert edges one at a time, keeping the closure invariant, then
        re-run disequality strengthening and the consistency checks."""
        n = len(self.terms)
        weak, strict = self._weak, self._strict
        pending = list(edges)
        while True:
            while pending:
                i, j, is_strict = pending.pop()
                bit_i = 1 << i
                already = strict[i] if is_strict else weak[i]
                if already & (1 << j):
                    continue
                succ_weak = weak[j] | (1 << j)
                succ_strict = strict[j]
                for p in range(n):
                    if p != i and not (weak[p] & bit_i):
                        continue
                    weak[p] |= succ_weak
                    if is_strict or (strict[p] & bit_i):
                        # the p ->* i -> j prefix is strict, so everything j
                        # weakly reaches is strictly below p
                        strict[p] |= succ_weak
                    else:
                        strict[p] |= succ_strict
            # disequality strengthening (i <= j and i != j imply i < j) may
            # enable further strict propagation; loop to a fixpoint
            for (a, b) in self._neq:
                if weak[a] & (1 << b) and not strict[a] & (1 << b):
                    pending.append((a, b, True))
                if weak[b] & (1 << a) and not strict[b] & (1 << a):
                    pending.append((b, a, True))
            if not pending:
                break
        for i in range(n):
            if strict[i] & (1 << i):
                self.satisfiable = False
                return
        for (i, j) in self._neq:
            if weak[i] & (1 << j) and weak[j] & (1 << i):
                self.satisfiable = False
                return

    def constant_bounds(
        self, term: Term
    ) -> tuple[Fraction | None, Fraction | None]:
        """The tightest constant interval the closure forces around ``term``.

        Weak reachability suffices for a *sound* bound (strictness only
        sharpens it, and index keys over-cover anyway), so both directions
        use the weak matrix.
        """
        if term not in self._index:
            return (None, None)
        low: Fraction | None = None
        high: Fraction | None = None
        for other in self.terms:
            if not isinstance(other, Const):
                continue
            if self.weakly_less(other, term) and (low is None or other.value > low):
                low = other.value
            if self.weakly_less(term, other) and (high is None or other.value < high):
                high = other.value
        return (low, high)

    def representative(self, term: Term) -> Term:
        """The canonical representative of ``term``'s equality class.

        Constants are preferred (a class pinned to a constant is *named* by
        it, which lets canonical forms drop every order atom the pin makes
        redundant); ties break by term sort order.
        """
        i = self._index[term]
        best = term
        best_key = (0 if isinstance(term, Const) else 1, term_sort_key(term))
        for j in range(len(self.terms)):
            if self._weak[i] & (1 << j) and self._weak[j] & (1 << i):
                candidate = self.terms[j]
                key = (
                    0 if isinstance(candidate, Const) else 1,
                    term_sort_key(candidate),
                )
                if key < best_key:
                    best, best_key = candidate, key
        return best


class DenseOrderTheory(ConstraintTheory):
    """The theory of dense linear order with constants over the rationals."""

    name = "dense_order"

    # convenience constructors re-exported on the theory object
    lt = staticmethod(lt)
    le = staticmethod(le)
    gt = staticmethod(gt)
    ge = staticmethod(ge)
    eq = staticmethod(eq)
    ne = staticmethod(ne)
    between = staticmethod(between)

    def validate_atom(self, atom: Atom) -> None:
        if not isinstance(atom, OrderAtom):
            raise TheoryError(f"{atom!r} is not a dense-order atom")

    def negate_atom(self, atom: Atom) -> Formula:
        self.validate_atom(atom)
        assert isinstance(atom, OrderAtom)
        a, b = atom.left, atom.right
        if atom.op == "<":
            return Or((OrderAtom("<", b, a), OrderAtom("=", a, b)))
        if atom.op == "<=":
            return OrderAtom("<", b, a)
        if atom.op == "=":
            return OrderAtom("!=", a, b)
        return OrderAtom("=", a, b)

    def equality(self, left: object, right: object) -> OrderAtom:
        return eq(left, right)

    def constant(self, value: object) -> Const:
        if isinstance(value, Const):
            return value
        return Const(Fraction(value))

    def atom_constants(self, atom: Atom) -> frozenset:
        self.validate_atom(atom)
        assert isinstance(atom, OrderAtom)
        values = set()
        for term in (atom.left, atom.right):
            if isinstance(term, Const):
                values.add(term.value)
        return frozenset(values)

    # ---------------------------------------------------------------- solver
    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        checked = self._checked(atoms)
        return _Closure(checked).satisfiable

    def pinned_constants(self, atoms: Sequence[Atom]) -> Mapping[str, Any]:
        """Syntactic var = const pins (canonical forms name pinned classes
        by their constant, so point tuples expose every coordinate here)."""
        pins: dict[str, Any] = {}
        for atom in atoms:
            if isinstance(atom, OrderAtom) and atom.op == "=":
                if isinstance(atom.left, Var) and isinstance(atom.right, Const):
                    pins[atom.left.name] = atom.right.value
                elif isinstance(atom.left, Const) and isinstance(atom.right, Var):
                    pins[atom.right.name] = atom.left.value
        return pins

    def conjunction_bounds(
        self, context: ConjunctionContext | Sequence[Atom], name: str
    ) -> tuple[Fraction | None, Fraction | None] | None:
        """Constant bounds on ``name`` for the index-backed join probe.

        Reads the bounds straight off the incremental join's order-graph
        closure when available (no extra solving); falls back to building a
        closure for a bare atom sequence.
        """
        if isinstance(context, ConjunctionContext):
            closure = context.state
            if not isinstance(closure, _Closure):
                closure = _Closure(self._checked(context.atoms))
        else:
            closure = _Closure(self._checked(context))
        low, high = closure.constant_bounds(Var(name))
        if low is None and high is None:
            return None
        return (low, high)

    # ------------------------------------------------- incremental conjunctions
    def begin_conjunction(self, atoms: Sequence[Atom]) -> ConjunctionContext:
        """Context carrying the order-graph closure for incremental joins."""
        checked = self._checked(atoms)
        closure = _Closure(checked)
        return ConjunctionContext(checked, closure.satisfiable, closure)

    def extend_conjunction(
        self, context: ConjunctionContext, new_atoms: Sequence[Atom]
    ) -> ConjunctionContext:
        checked = self._checked(new_atoms)
        conjunction = context.atoms + checked
        if not context.satisfiable:
            return ConjunctionContext(conjunction, False, context.state)
        closure = context.state
        assert isinstance(closure, _Closure)
        child = closure.extended(checked)
        return ConjunctionContext(conjunction, child.satisfiable, child)

    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        """Closure-derived normal form: equality classes, the transitive
        reduction of the order relation among class representatives, and
        non-implied disequalities.

        Deterministic, equivalence-preserving, and equal for equivalent
        conjunctions whenever the path-consistent closure derives all
        implied relations (always, except for exotic disequality patterns in
        the point algebra, where dedup merely becomes slightly less sharp --
        never incorrect).
        """
        checked = self._checked(atoms)
        closure = _Closure(checked)
        if not closure.satisfiable:
            return None
        terms = closure.terms
        result: list[OrderAtom] = []
        # equality classes: each term equated to its sort-least representative
        representatives: list[Term] = []
        for term in terms:
            rep = closure.representative(term)
            if rep == term:
                representatives.append(term)
            else:
                result.append(OrderAtom("=", rep, term))
        # order edges between representatives (skip constant-constant pairs)
        def interesting(a: Term, b: Term) -> bool:
            return not (isinstance(a, Const) and isinstance(b, Const))

        def relation(a: Term, b: Term) -> str | None:
            if closure.strictly_less(a, b):
                return "<"
            if closure.weakly_less(a, b):
                return "<="
            return None

        for a in representatives:
            for b in representatives:
                if a == b:
                    continue
                rel = relation(a, b)
                if rel is None or not interesting(a, b):
                    continue
                # transitive reduction: drop the edge if some intermediate
                # representative c reproduces it at full strength
                implied = False
                for c in representatives:
                    if c == a or c == b:
                        continue
                    first = relation(a, c)
                    second = relation(c, b)
                    if first is None or second is None:
                        continue
                    strength = "<" if "<" in (first, second) and (
                        first == "<" or second == "<"
                    ) else "<="
                    if rel == "<=" or strength == "<":
                        implied = True
                        break
                if not implied:
                    result.append(OrderAtom(rel, a, b))
        # disequalities not already implied by a strict relation
        for (i, j) in closure._neq:
            a, b = terms[i], terms[j]
            rep_a, rep_b = closure.representative(a), closure.representative(b)
            if closure.strictly_less(rep_a, rep_b) or closure.strictly_less(
                rep_b, rep_a
            ):
                continue
            if isinstance(rep_a, Const) and isinstance(rep_b, Const):
                continue
            result.append(OrderAtom("!=", rep_a, rep_b))
        return tuple(sorted(set(result), key=str))

    # ---------------------------------------------------- quantifier elimination
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        worklist: list[list[OrderAtom]] = [list(self._checked(atoms))]
        for name in drop:
            next_worklist: list[list[OrderAtom]] = []
            for conjunction in worklist:
                # disequalities on the eliminated variable make the
                # projection a genuine disjunction (e.g. exists x with
                # a <= x <= b and x != c excludes the point a = b = c), so
                # split them into strict branches first
                for branch in self._split_disequalities(conjunction, name):
                    result = self._eliminate_one(branch, name)
                    if result is not None:
                        next_worklist.append(result)
            worklist = next_worklist
            if not worklist:
                return []
        results: list[Conjunction] = []
        seen: set[frozenset[OrderAtom]] = set()
        for conjunction in worklist:
            if not _Closure(conjunction).satisfiable:
                continue
            key = frozenset(conjunction)
            if key not in seen:
                seen.add(key)
                results.append(tuple(conjunction))
        return results

    def _split_disequalities(
        self, atoms: list[OrderAtom], name: str
    ) -> list[list[OrderAtom]]:
        """Rewrite each ``t != u`` involving the variable into < branches."""
        var = Var(name)
        branches: list[list[OrderAtom]] = [[]]
        for atom in atoms:
            if atom.op == "!=" and var in (atom.left, atom.right):
                below = OrderAtom("<", atom.left, atom.right)
                above = OrderAtom("<", atom.right, atom.left)
                branches = [b + [below] for b in branches] + [
                    b + [above] for b in branches
                ]
            else:
                for branch in branches:
                    branch.append(atom)
        return branches

    def _eliminate_one(
        self, atoms: list[OrderAtom], name: str
    ) -> list[OrderAtom] | None:
        """``exists name . conjunction`` as a conjunction, or None if unsat.

        Dense-order elimination of one variable from a satisfiable
        conjunction is again a single conjunction (convexity in the
        eliminated coordinate once disequalities are strengthened away by the
        closure).
        """
        closure = _Closure(atoms)
        if not closure.satisfiable:
            return None
        var = Var(name)
        if var not in closure._index:
            return list(atoms)
        partner = next(
            (t for t in closure.terms if t != var and closure.equal(var, t)), None
        )
        if partner is not None:
            # the variable is forced equal to another term: substitute it
            substituted = []
            for atom in atoms:
                new = OrderAtom(
                    atom.op,
                    partner if atom.left == var else atom.left,
                    partner if atom.right == var else atom.right,
                )
                substituted.append(new)
            return self._simplify_ground(substituted)
        lowers: list[tuple[Term, bool]] = []  # (term, strict)
        uppers: list[tuple[Term, bool]] = []
        kept: list[OrderAtom] = []
        for atom in atoms:
            involves = var in (atom.left, atom.right)
            if not involves:
                kept.append(atom)
                continue
            if atom.left == var and atom.right == var:
                if atom.op == "<" or atom.op == "!=":
                    return None
                continue
            other = atom.right if atom.left == var else atom.left
            var_on_left = atom.left == var
            if atom.op == "=":
                raise AssertionError(
                    "equality with another term should have been substituted"
                )
            if atom.op == "!=":
                raise AssertionError(
                    "disequalities on the variable are split before elimination"
                )
            strict = atom.op == "<"
            if var_on_left:
                uppers.append((other, strict))
            else:
                lowers.append((other, strict))
        for low, s1 in lowers:
            for high, s2 in uppers:
                op = "<" if (s1 or s2) else "<="
                kept.append(OrderAtom(op, low, high))
        simplified = self._simplify_ground(kept)
        if simplified is None:
            return None
        if not _Closure(simplified).satisfiable:
            return None
        return simplified

    def _simplify_ground(self, atoms: list[OrderAtom]) -> list[OrderAtom] | None:
        """Evaluate constant-vs-constant atoms; None if one is false."""
        result = []
        for atom in atoms:
            if isinstance(atom.left, Const) and isinstance(atom.right, Const):
                if not atom.holds({}):
                    return None
                continue
            if atom.left == atom.right:
                if atom.op in ("<", "!="):
                    return None
                continue
            result.append(atom)
        return result

    # ----------------------------------------------------------- sample points
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        checked = self._checked(atoms)
        closure = _Closure(checked)
        if not closure.satisfiable:
            return None
        values: dict[Term, Fraction] = {}
        used: set[Fraction] = set()
        for term in closure.terms:
            if isinstance(term, Const):
                values[term] = term.value
                used.add(term.value)
        # pin every class containing a constant to that constant
        for term in closure.terms:
            if isinstance(term, Var):
                pinned = next(
                    (
                        c
                        for c in closure.terms
                        if isinstance(c, Const) and closure.equal(term, c)
                    ),
                    None,
                )
                if pinned is not None:
                    values[term] = pinned.value
        # the remaining ("free") classes are never forced equal to an
        # assigned value, so we may pick each value strictly inside its
        # interval relative to the already-assigned terms and distinct from
        # every value used so far -- density guarantees such a point, and
        # distinctness discharges all disequalities at once (the Lemma 3.7
        # extension argument)
        pending = [
            t
            for t in closure.terms
            if isinstance(t, Var)
            and t not in values
            and closure.representative(t) == t
        ]
        for term in pending:
            low: Fraction | None = None
            high: Fraction | None = None
            for other, value in values.items():
                if closure.weakly_less(other, term):
                    if low is None or value > low:
                        low = value
                if closure.weakly_less(term, other):
                    if high is None or value < high:
                        high = value
            value = _pick_in_interval(low, True, high, True, set(used))
            if value is None:  # pragma: no cover - closure guarantees room
                return None
            values[term] = value
            used.add(value)
        # non-representative free variables copy their class representative
        for term in closure.terms:
            if isinstance(term, Var) and term not in values:
                values[term] = values[closure.representative(term)]
        assignment: dict[str, Any] = {}
        for name in variables:
            var = Var(name)
            if var in closure._index:
                assignment[name] = values[var]
            else:
                assignment[name] = Fraction(0)
        return assignment

    # -------------------------------------------------------------- internals
    def _checked(self, atoms: Sequence[Atom]) -> tuple[OrderAtom, ...]:
        for atom in atoms:
            self.validate_atom(atom)
        return tuple(atoms)  # type: ignore[arg-type]


def _pick_in_interval(
    low: Fraction | None,
    low_strict: bool,
    high: Fraction | None,
    high_strict: bool,
    forbidden: set[Fraction],
) -> Fraction | None:
    """A rational in the interval described by the bounds, avoiding ``forbidden``.

    Returns ``None`` only when the interval is genuinely empty (which the
    closure should already have rejected).
    """
    if low is not None and high is not None:
        if low > high:
            return None
        if low == high:
            if low_strict or high_strict or low in forbidden:
                return None
            return low
        # enumerate dyadic points strictly inside (low, high); the forbidden
        # set is finite, so this terminates
        width = high - low
        denominator = 2
        while True:
            for numerator in range(1, denominator, 2):
                candidate = low + width * Fraction(numerator, denominator)
                if candidate not in forbidden:
                    return candidate
            denominator *= 2
    if low is not None:
        candidate = low + 1 if low_strict else low
        while candidate in forbidden:
            candidate += 1
        return candidate
    if high is not None:
        candidate = high - 1 if high_strict else high
        while candidate in forbidden:
            candidate -= 1
        return candidate
    candidate = Fraction(0)
    while candidate in forbidden:
        candidate += 1
    return candidate
