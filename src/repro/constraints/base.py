"""The interface every constraint theory implements.

The CQL design principles (Section 1.1) require, for each theory, exactly the
operations below: deciding satisfiability of a generalized tuple, negating an
atom inside the theory, eliminating existential quantifiers in closed form,
and producing canonical representations so that bottom-up fixpoints can detect
convergence.  The generic evaluators in :mod:`repro.core` are written purely
against this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import TheoryError
from repro.logic.syntax import Atom, Formula

Conjunction = tuple[Atom, ...]


class ConstraintTheory(ABC):
    """Operations on conjunctions of constraint atoms of one theory.

    A *conjunction* is a tuple of atoms, i.e. a generalized tuple's
    constraint part (Definition 1.3.1).  ``None`` is used throughout as the
    canonical unsatisfiable conjunction.
    """

    #: short identifier, e.g. ``"dense_order"``
    name: str = "abstract"

    # ------------------------------------------------------------------ atoms
    @abstractmethod
    def validate_atom(self, atom: Atom) -> None:
        """Raise :class:`TheoryError` if ``atom`` is not of this theory."""

    @abstractmethod
    def negate_atom(self, atom: Atom) -> Formula:
        """A formula (disjunction of atoms of this theory) equivalent to ``not atom``."""

    @abstractmethod
    def equality(self, left: object, right: object) -> Atom:
        """The atom ``left = right`` (used to compile constants in relation atoms)."""

    def constant(self, value: object) -> object:
        """Wrap a raw Python value as an unambiguous domain constant.

        Used by :meth:`GeneralizedRelation.add_point`, where every value is a
        constant (never a variable name, even if it is a string).
        """
        return value

    @abstractmethod
    def atom_constants(self, atom: Atom) -> frozenset:
        """The domain constants mentioned by ``atom``."""

    # ---------------------------------------------------------- conjunctions
    @abstractmethod
    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        """Whether the conjunction has at least one solution in the domain."""

    @abstractmethod
    def canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        """A canonical equivalent conjunction, or ``None`` if unsatisfiable.

        Canonical forms are deterministic, and equal for equal solution sets
        in the pointwise theories (dense order, equality); for the polynomial
        theory they are a sound normal form used only for duplicate
        elimination.
        """

    @abstractmethod
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        """Quantifier elimination: ``exists drop . conjunction`` as a DNF.

        Returns a list of conjunctions whose disjunction is equivalent to the
        existential formula; the empty list means *false*.  This is the
        "projection" of the generalized relational algebra (Section 2.1).
        """

    @abstractmethod
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        """A satisfying assignment for ``variables``, or ``None`` if unsat.

        Variables unconstrained by the conjunction receive an arbitrary
        domain element.  Used by tests, by the Herbrand machinery of
        Section 3.2 (which checks ``F(xi) -> C`` by evaluating at one point,
        justified by Lemmas 3.9/3.10), and by example programs.
        """

    # ------------------------------------------------- derived functionality
    def entails(self, atoms: Sequence[Atom], consequence: Atom) -> bool:
        """Exact entailment: ``conjunction |= consequence``.

        Implemented as unsatisfiability of ``conjunction and not consequence``;
        the negation is a disjunction of atoms, each branch checked separately.
        """
        negated = self.negate_atom(consequence)
        for branch in _formula_disjuncts(negated):
            if self.is_satisfiable(tuple(atoms) + branch):
                return False
        return True

    def entails_all(self, atoms: Sequence[Atom], consequences: Sequence[Atom]) -> bool:
        """Whether the conjunction entails every atom in ``consequences``."""
        return all(self.entails(atoms, c) for c in consequences)

    def equivalent(self, left: Sequence[Atom], right: Sequence[Atom]) -> bool:
        """Exact solution-set equality of two conjunctions."""
        left_sat = self.is_satisfiable(left)
        right_sat = self.is_satisfiable(right)
        if not left_sat or not right_sat:
            return left_sat == right_sat
        return self.entails_all(left, right) and self.entails_all(right, left)

    def holds(self, atoms: Sequence[Atom], assignment: Mapping[str, Any]) -> bool:
        """Evaluate the conjunction at a ground point."""
        return all(atom.holds(assignment) for atom in atoms)

    def validate_conjunction(self, atoms: Sequence[Atom]) -> None:
        """Validate every atom of the conjunction."""
        for atom in atoms:
            self.validate_atom(atom)

    def conjunction_constants(self, atoms: Sequence[Atom]) -> frozenset:
        """All constants mentioned by the conjunction."""
        result: frozenset = frozenset()
        for atom in atoms:
            result |= self.atom_constants(atom)
        return result


def _formula_disjuncts(formula: Formula) -> list[Conjunction]:
    """Flatten a formula built of Or/And/atoms into DNF conjunctions."""
    from repro.logic.transform import to_dnf

    dnf = to_dnf(formula)
    result: list[Conjunction] = []
    for conjunct in dnf:
        atoms: list[Atom] = []
        for literal in conjunct:
            if not isinstance(literal, Atom):
                raise TheoryError(
                    f"negation produced a non-atom literal: {literal!r}"
                )
            atoms.append(literal)
        result.append(tuple(atoms))
    return result
