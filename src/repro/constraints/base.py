"""The interface every constraint theory implements.

The CQL design principles (Section 1.1) require, for each theory, exactly the
operations below: deciding satisfiability of a generalized tuple, negating an
atom inside the theory, eliminating existential quantifiers in closed form,
and producing canonical representations so that bottom-up fixpoints can detect
convergence.  The generic evaluators in :mod:`repro.core` are written purely
against this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import TheoryError
from repro.logic.syntax import Atom, Formula

Conjunction = tuple[Atom, ...]

_MISS = object()


def _evict_one(table: dict) -> None:
    """Drop the oldest entry of a FIFO memo table (best effort).

    The parallel Datalog engine shares one cache across worker threads;
    concurrent evictions can race between picking a victim and popping it, so
    the pop tolerates a vanished key rather than surfacing a spurious error.
    """
    try:
        table.pop(next(iter(table)), None)
    except (StopIteration, RuntimeError):
        pass


@dataclass
class TheoryCacheStats:
    """Hit/miss counters for one :class:`TheoryCache`."""

    sat_hits: int = 0
    sat_misses: int = 0
    canon_hits: int = 0
    canon_misses: int = 0

    @property
    def hits(self) -> int:
        return self.sat_hits + self.canon_hits

    @property
    def misses(self) -> int:
        return self.sat_misses + self.canon_misses

    def snapshot(self) -> tuple[int, int]:
        return (self.hits, self.misses)

    def as_dict(self) -> dict[str, int]:
        return {
            "sat_hits": self.sat_hits,
            "sat_misses": self.sat_misses,
            "canon_hits": self.canon_hits,
            "canon_misses": self.canon_misses,
        }


class TheoryCache:
    """Memoizes ``is_satisfiable`` and ``canonicalize`` per theory instance.

    Both operations are pure functions of the *set* of atoms (every theory's
    solver is order- and multiplicity-insensitive), so results are keyed on
    ``frozenset(atoms)``.  The Datalog fixpoint loops re-check the same
    conjunctions on every round (dedup re-canonicalizes every derived tuple;
    the join re-tests overlapping partial conjunctions), which is where the
    memoization pays for itself.

    Entries are evicted FIFO once ``maxsize`` is exceeded, bounding memory on
    pathological workloads; ``enabled`` can be flipped at runtime (the engine
    ablation flags use this).
    """

    def __init__(self, maxsize: int = 1 << 16) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.stats = TheoryCacheStats()
        self._sat: dict[frozenset[Atom], bool] = {}
        self._canon: dict[frozenset[Atom], Conjunction | None] = {}

    def clear(self) -> None:
        self._sat.clear()
        self._canon.clear()

    # The lookup/store pairs are split (rather than a memoize decorator) so
    # the theory wrappers can cross-populate: a canonicalize miss that proves
    # unsatisfiability also answers future is_satisfiable queries.
    def lookup_sat(self, key: frozenset[Atom]) -> Any:
        found = self._sat.get(key, _MISS)
        if found is _MISS:
            self.stats.sat_misses += 1
        else:
            self.stats.sat_hits += 1
        return found

    def store_sat(self, key: frozenset[Atom], value: bool) -> None:
        if len(self._sat) >= self.maxsize:
            _evict_one(self._sat)
        self._sat[key] = value

    def lookup_canon(self, key: frozenset[Atom]) -> Any:
        found = self._canon.get(key, _MISS)
        if found is _MISS:
            self.stats.canon_misses += 1
        else:
            self.stats.canon_hits += 1
        return found

    def store_canon(self, key: frozenset[Atom], value: Conjunction | None) -> None:
        if len(self._canon) >= self.maxsize:
            _evict_one(self._canon)
        self._canon[key] = value


@dataclass
class ConjunctionContext:
    """Opaque state for incrementally-built conjunctions (depth-first joins).

    ``state`` is theory-private (the dense-order theory stores the order-graph
    closure of the partial conjunction so a child candidate extends it instead
    of re-closing from scratch); the generic fallback keeps only the atoms.
    """

    atoms: Conjunction
    satisfiable: bool
    state: object | None = field(default=None, repr=False)


class ConstraintTheory(ABC):
    """Operations on conjunctions of constraint atoms of one theory.

    A *conjunction* is a tuple of atoms, i.e. a generalized tuple's
    constraint part (Definition 1.3.1).  ``None`` is used throughout as the
    canonical unsatisfiable conjunction.

    Subclasses implement the private ``_is_satisfiable``/``_canonicalize``
    solvers; the public entry points add the :class:`TheoryCache` memo layer.
    """

    #: short identifier, e.g. ``"dense_order"``
    name: str = "abstract"

    #: whether a non-``None`` ``canonicalize`` result proves satisfiability
    #: (exact for the pointwise and boolean theories; the polynomial theory
    #: returns sound-but-incomplete normal forms outside the QE fragment)
    canonical_decides_sat: bool = True

    def __init__(self, cache: TheoryCache | None = None) -> None:
        self.cache = cache if cache is not None else TheoryCache()

    # ------------------------------------------------------------------ atoms
    @abstractmethod
    def validate_atom(self, atom: Atom) -> None:
        """Raise :class:`TheoryError` if ``atom`` is not of this theory."""

    @abstractmethod
    def negate_atom(self, atom: Atom) -> Formula:
        """A formula (disjunction of atoms of this theory) equivalent to ``not atom``."""

    @abstractmethod
    def equality(self, left: object, right: object) -> Atom:
        """The atom ``left = right`` (used to compile constants in relation atoms)."""

    def constant(self, value: object) -> object:
        """Wrap a raw Python value as an unambiguous domain constant.

        Used by :meth:`GeneralizedRelation.add_point`, where every value is a
        constant (never a variable name, even if it is a string).
        """
        return value

    @abstractmethod
    def atom_constants(self, atom: Atom) -> frozenset:
        """The domain constants mentioned by ``atom``."""

    # ---------------------------------------------------------- conjunctions
    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        """Whether the conjunction has at least one solution in the domain."""
        cache = self.cache
        if cache is None or not cache.enabled:
            return self._is_satisfiable(atoms)
        key = frozenset(atoms)
        found = cache.lookup_sat(key)
        if found is not _MISS:
            return found
        result = self._is_satisfiable(atoms)
        cache.store_sat(key, result)
        return result

    def canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        """A canonical equivalent conjunction, or ``None`` if unsatisfiable.

        Canonical forms are deterministic, and equal for equal solution sets
        in the pointwise theories (dense order, equality); for the polynomial
        theory they are a sound normal form used only for duplicate
        elimination.
        """
        cache = self.cache
        if cache is None or not cache.enabled:
            return self._canonicalize(atoms)
        key = frozenset(atoms)
        found = cache.lookup_canon(key)
        if found is not _MISS:
            return found
        result = self._canonicalize(atoms)
        cache.store_canon(key, result)
        # cross-populate the satisfiability memo: None always means a proven
        # unsatisfiability; a canonical form proves satisfiability only where
        # the theory's canonicalizer is exact
        if result is None:
            cache.store_sat(key, False)
        elif self.canonical_decides_sat:
            cache.store_sat(key, True)
        return result

    @abstractmethod
    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        """Uncached satisfiability (the actual solver)."""

    @abstractmethod
    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        """Uncached canonicalization (the actual normalizer)."""

    def pinned_constants(self, atoms: Sequence[Atom]) -> Mapping[str, Any]:
        """Variables the conjunction forces equal to a specific constant.

        Sound pruning interface for the Datalog join: if two conjunctions pin
        the same variable to *different* constants, their conjunction is
        unsatisfiable, so a candidate tuple can be rejected by a dictionary
        comparison without consulting the solver.  The default (no
        information) disables the shortcut.
        """
        return {}

    def conjunction_bounds(
        self, context: "ConjunctionContext | Sequence[Atom]", name: str
    ) -> tuple[Any, Any] | None:
        """Constant bounds ``(low, high)`` the conjunction forces on ``name``.

        Sound probing interface for the index-backed Datalog join: any tuple
        joinable with the conjunction must admit a value of ``name`` inside
        ``[low, high]`` (either end may be ``None`` for unbounded).  Accepts
        the incremental :class:`ConjunctionContext` (so theories can read
        bounds off their solver state) or a bare atom sequence.  The default
        (no information) disables index probing.
        """
        return None

    # ------------------------------------------------- incremental conjunctions
    def begin_conjunction(self, atoms: Sequence[Atom]) -> ConjunctionContext:
        """Start an incrementally extensible conjunction (see the Datalog join).

        The default implementation keeps no solver state and re-decides from
        scratch on every extension (hitting the :class:`TheoryCache`);
        theories with incremental solvers override both hooks.
        """
        conjunction = tuple(atoms)
        return ConjunctionContext(conjunction, self.is_satisfiable(conjunction))

    def extend_conjunction(
        self, context: ConjunctionContext, new_atoms: Sequence[Atom]
    ) -> ConjunctionContext:
        """Conjoin ``new_atoms`` onto an existing context.

        Satisfiability is monotone downward: once a context is unsatisfiable
        every extension stays unsatisfiable without consulting the solver.
        """
        conjunction = context.atoms + tuple(new_atoms)
        if not context.satisfiable:
            return ConjunctionContext(conjunction, False)
        return ConjunctionContext(conjunction, self.is_satisfiable(conjunction))

    @abstractmethod
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        """Quantifier elimination: ``exists drop . conjunction`` as a DNF.

        Returns a list of conjunctions whose disjunction is equivalent to the
        existential formula; the empty list means *false*.  This is the
        "projection" of the generalized relational algebra (Section 2.1).
        """

    @abstractmethod
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        """A satisfying assignment for ``variables``, or ``None`` if unsat.

        Variables unconstrained by the conjunction receive an arbitrary
        domain element.  Used by tests, by the Herbrand machinery of
        Section 3.2 (which checks ``F(xi) -> C`` by evaluating at one point,
        justified by Lemmas 3.9/3.10), and by example programs.
        """

    # ------------------------------------------------- derived functionality
    def entails(self, atoms: Sequence[Atom], consequence: Atom) -> bool:
        """Exact entailment: ``conjunction |= consequence``.

        Implemented as unsatisfiability of ``conjunction and not consequence``;
        the negation is a disjunction of atoms, each branch checked separately.
        """
        negated = self.negate_atom(consequence)
        for branch in _formula_disjuncts(negated):
            if self.is_satisfiable(tuple(atoms) + branch):
                return False
        return True

    def entails_all(self, atoms: Sequence[Atom], consequences: Sequence[Atom]) -> bool:
        """Whether the conjunction entails every atom in ``consequences``."""
        return all(self.entails(atoms, c) for c in consequences)

    def equivalent(self, left: Sequence[Atom], right: Sequence[Atom]) -> bool:
        """Exact solution-set equality of two conjunctions."""
        left_sat = self.is_satisfiable(left)
        right_sat = self.is_satisfiable(right)
        if not left_sat or not right_sat:
            return left_sat == right_sat
        return self.entails_all(left, right) and self.entails_all(right, left)

    def holds(self, atoms: Sequence[Atom], assignment: Mapping[str, Any]) -> bool:
        """Evaluate the conjunction at a ground point."""
        return all(atom.holds(assignment) for atom in atoms)

    def validate_conjunction(self, atoms: Sequence[Atom]) -> None:
        """Validate every atom of the conjunction."""
        for atom in atoms:
            self.validate_atom(atom)

    def conjunction_constants(self, atoms: Sequence[Atom]) -> frozenset:
        """All constants mentioned by the conjunction."""
        result: frozenset = frozenset()
        for atom in atoms:
            result |= self.atom_constants(atom)
        return result


def _formula_disjuncts(formula: Formula) -> list[Conjunction]:
    """Flatten a formula built of Or/And/atoms into DNF conjunctions."""
    from repro.logic.transform import to_dnf

    dnf = to_dnf(formula)
    result: list[Conjunction] = []
    for conjunct in dnf:
        atoms: list[Atom] = []
        for literal in conjunct:
            if not isinstance(literal, Atom):
                raise TheoryError(
                    f"negation produced a non-atom literal: {literal!r}"
                )
            atoms.append(literal)
        result.append(tuple(atoms))
    return result
