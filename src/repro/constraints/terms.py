"""Terms shared by the pointwise constraint theories.

Dense-order and equality atoms relate two *terms*, each either a variable or
a constant of the domain D (Definition 1.2).  Terms are immutable and
hashable; a total :func:`term_sort_key` makes canonical forms deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Mapping, Union


@dataclass(frozen=True, slots=True)
class Var:
    """A variable ranging over the constraint domain."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant element of the constraint domain."""

    value: Any

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Var, Const]


def as_term(value: object) -> Term:
    """Coerce a convenience value into a :class:`Term`.

    Strings become variables; numbers become rational constants; existing
    terms pass through.  This is the coercion used throughout the public
    constructors, so that callers can write ``order.lt("x", 3)``.
    """
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool):
        raise TypeError("booleans are not domain elements of a pointwise theory")
    if isinstance(value, (int, Fraction)):
        return Const(Fraction(value))
    if isinstance(value, float):
        return Const(Fraction(value).limit_denominator(10**12))
    raise TypeError(f"cannot interpret {value!r} as a term")


def term_sort_key(term: Term) -> tuple:
    """A deterministic total order on terms: variables first, then constants."""
    if isinstance(term, Var):
        return (0, term.name)
    return (1, _const_key(term.value))


def _const_key(value: Any) -> tuple:
    """Order constants of mixed types deterministically (type name, then value)."""
    try:
        hash(value)
    except TypeError as exc:  # pragma: no cover - defensive
        raise TypeError(f"constants must be hashable, got {value!r}") from exc
    return (type(value).__name__, str(value), repr(value))


def rename_term(term: Term, mapping: Mapping[str, str]) -> Term:
    """Rename a variable term according to ``mapping``; constants unchanged."""
    if isinstance(term, Var):
        return Var(mapping.get(term.name, term.name))
    return term


def eval_term(term: Term, assignment: Mapping[str, Any]) -> Any:
    """Value of a term at a ground point."""
    if isinstance(term, Var):
        return assignment[term.name]
    return term.value


def term_str(term: Term) -> str:
    """Human-readable rendering of a term."""
    return str(term)
