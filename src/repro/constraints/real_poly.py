"""Real polynomial inequality constraints (Definition 1.2.1, Section 2).

Atoms are ``p(x1, ..., xk) op 0`` with rational-coefficient polynomials and
``op`` among ``=, !=, <, <=`` (``>``/``>=`` are normalized away).  The domain
is the real numbers; by Tarski the theory admits quantifier elimination, so
relational calculus + these constraints is closed (Theorem 2.3).

Elimination ladder (DESIGN.md section 4): per eliminated variable we try

1. Fourier-Motzkin -- atoms linear in the variable with constant coefficient;
2. Loos-Weispfenning virtual substitution -- atoms of degree <= 2 in the
   variable, parametric coefficients allowed;
3. bivariate cylindrical algebraic decomposition -- any degrees, but the
   conjunction may involve at most two variables in total;

and raise :class:`UnsupportedEliminationError` beyond that fragment, which
covers every example in the paper.  Datalog recursion over this theory is
*rejected* by the engine (Example 1.12: not closed).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.constraints.base import Conjunction, ConstraintTheory
from repro.errors import BudgetExceededError, TheoryError, UnsupportedEliminationError
from repro.logic.syntax import Atom, Formula
from repro.poly.polynomial import Polynomial
from repro.qe.fourier_motzkin import FMNotApplicableError, fourier_motzkin_eliminate
from repro.qe.signs import Conj, Dnf, SignCond, negate_cond, simplify_conj
from repro.qe.virtual_substitution import vs_eliminate
from repro.runtime.budget import active_meter, metered

_OPS = ("=", "!=", "<", "<=")


def _capped_rung(
    runner: "Callable[[Conj, str], Dnf]", conj: Conj, var: str
) -> Dnf:
    """Run one QE-ladder rung under its per-rung step cap (if configured).

    The child meter forwards every tick to the run's global meter first, so
    deadlines and run-wide budgets still apply inside the rung; only the
    child's own ``qe_steps`` cap trips with ``scope="qe_rung"``.
    """
    meter = active_meter()
    if meter is None or meter.budget.qe_rung_steps is None:
        return runner(conj, var)
    with metered(meter.rung_meter()):
        return runner(conj, var)


def _is_rung_trip(error: BudgetExceededError) -> bool:
    report = error.report
    return report is not None and report.scope == "qe_rung"


@dataclass(frozen=True, slots=True)
class PolyAtom(Atom):
    """The constraint ``poly op 0``."""

    poly: Polynomial
    op: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TheoryError(
                f"bad polynomial operator {self.op!r}; >/>= must be normalized"
            )

    def variables(self) -> frozenset[str]:
        return self.poly.variables()

    def rename(self, mapping: Mapping[str, str]) -> "PolyAtom":
        return PolyAtom(self.poly.rename(mapping), self.op)

    def holds(self, assignment: Mapping[str, Any]) -> bool:
        return self.as_cond().evaluate(assignment)

    def as_cond(self) -> SignCond:
        return SignCond(self.poly, self.op)

    @staticmethod
    def from_cond(cond: SignCond) -> "PolyAtom":
        return PolyAtom(cond.poly, cond.op)

    def __str__(self) -> str:
        return f"{self.poly} {self.op} 0"


def _as_poly(value: object) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, str):
        return Polynomial.variable(value)
    if isinstance(value, (int, Fraction)):
        return Polynomial.constant(value)
    if isinstance(value, float):
        return Polynomial.constant(Fraction(value).limit_denominator(10**12))
    raise TheoryError(f"cannot interpret {value!r} as a polynomial")


def poly_eq(left: object, right: object = 0) -> PolyAtom:
    """``left = right``"""
    return PolyAtom(_as_poly(left) - _as_poly(right), "=")


def poly_ne(left: object, right: object = 0) -> PolyAtom:
    """``left != right``"""
    return PolyAtom(_as_poly(left) - _as_poly(right), "!=")


def poly_lt(left: object, right: object = 0) -> PolyAtom:
    """``left < right``"""
    return PolyAtom(_as_poly(left) - _as_poly(right), "<")


def poly_le(left: object, right: object = 0) -> PolyAtom:
    """``left <= right``"""
    return PolyAtom(_as_poly(left) - _as_poly(right), "<=")


def poly_gt(left: object, right: object = 0) -> PolyAtom:
    """``left > right``"""
    return PolyAtom(_as_poly(right) - _as_poly(left), "<")


def poly_ge(left: object, right: object = 0) -> PolyAtom:
    """``left >= right``"""
    return PolyAtom(_as_poly(right) - _as_poly(left), "<=")


class RealPolynomialTheory(ConstraintTheory):
    """The theory of real closed fields, restricted to the QE ladder fragment."""

    name = "real_poly"

    # normal forms outside the QE fragment are sound but do not decide
    # satisfiability, so a canonicalize hit must not imply sat (see base)
    canonical_decides_sat = False

    eq = staticmethod(poly_eq)
    ne = staticmethod(poly_ne)
    lt = staticmethod(poly_lt)
    le = staticmethod(poly_le)
    gt = staticmethod(poly_gt)
    ge = staticmethod(poly_ge)
    var = staticmethod(Polynomial.variable)
    const = staticmethod(Polynomial.constant)

    def validate_atom(self, atom: Atom) -> None:
        if not isinstance(atom, PolyAtom):
            raise TheoryError(f"{atom!r} is not a polynomial atom")

    def negate_atom(self, atom: Atom) -> Formula:
        self.validate_atom(atom)
        assert isinstance(atom, PolyAtom)
        return PolyAtom.from_cond(negate_cond(atom.as_cond()))

    def equality(self, left: object, right: object) -> PolyAtom:
        return poly_eq(left, right)

    def constant(self, value: object) -> Polynomial:
        if isinstance(value, Polynomial):
            return value
        return Polynomial.constant(value)  # type: ignore[arg-type]

    def atom_constants(self, atom: Atom) -> frozenset:
        self.validate_atom(atom)
        assert isinstance(atom, PolyAtom)
        return frozenset(atom.poly.terms.values())

    # ---------------------------------------------------------------- solver
    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        conds = self._as_conds(atoms)
        simplified = simplify_conj(conds)
        if simplified is None:
            return False
        dnf: Dnf = [simplified]
        variables = sorted({v for c in simplified for v in c.poly.variables()})
        for var in variables:
            dnf = self._eliminate_var_dnf(dnf, var)
            if not dnf:
                return False
        # fully ground now: any surviving branch is satisfiable
        return any(simplify_conj(conj) is not None for conj in dnf)

    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        """Normalized form: primitive polynomials, deduplicated, sorted.

        Detects unsatisfiability when the conjunction lies inside the QE
        fragment; outside it the normalized conjunction is returned as-is
        (sound: an unsatisfiable generalized tuple denotes the empty set and
        is harmless in a generalized relation).
        """
        normalized: list[PolyAtom] = []
        for atom in self._checked(atoms):
            poly = atom.poly
            if poly.is_constant():
                cond = SignCond(poly, atom.op)
                if not cond.evaluate({}):
                    return None
                continue
            if atom.op in ("=", "!="):
                normalized.append(PolyAtom(poly.primitive(), atom.op))
            else:
                # preserve the sign for order comparisons: scale by the
                # positive content only.  primitive() forces a positive
                # leading coefficient, so undo its flip if the original
                # leading coefficient was negative.
                primitive = poly.primitive()
                _, lead = poly.leading_term()
                normalized.append(
                    PolyAtom(-primitive if lead < 0 else primitive, atom.op)
                )
        unique = sorted(set(normalized), key=str)
        try:
            if not self.is_satisfiable(tuple(unique)):
                return None
        except UnsupportedEliminationError:
            pass
        return tuple(unique)

    # ---------------------------------------------------- quantifier elimination
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        conds = self._as_conds(atoms)
        simplified = simplify_conj(conds)
        if simplified is None:
            return []
        dnf: Dnf = [simplified]
        for var in drop:
            dnf = self._eliminate_var_dnf(dnf, var)
            if not dnf:
                return []
        return [
            tuple(PolyAtom.from_cond(c) for c in conj)
            for conj in dnf
            if simplify_conj(conj) is not None
        ]

    def _eliminate_var_dnf(self, dnf: Dnf, var: str) -> Dnf:
        result: Dnf = []
        for conj in dnf:
            result.extend(self._eliminate_var_conj(conj, var))
        # dedup
        seen: set[frozenset[SignCond]] = set()
        unique: Dnf = []
        for conj in result:
            key = frozenset(conj)
            if key not in seen:
                seen.add(key)
                unique.append(conj)
        return unique

    def _eliminate_var_conj(self, conj: Conj, var: str) -> Dnf:
        """The QE degradation ladder: FM -> VS -> bivariate CAD.

        Each rung is tried cheapest-first and falls through to the next both
        on *inapplicability* (the input is outside the rung's fragment) and
        -- when the active budget sets ``qe_rung_steps`` -- on *rung budget
        exhaustion*: the rung runs under a child meter capped at that many
        ``qe_step`` ticks, so a combinatorial blow-up in one backend degrades
        to the next instead of consuming the whole run's budget.  The final
        CAD rung runs uncapped (only the run-global budgets apply): it is the
        last resort, so giving up there means giving up entirely.
        """
        if all(var not in c.poly.variables() for c in conj):
            return [conj]
        try:
            return _capped_rung(fourier_motzkin_eliminate, conj, var)
        except FMNotApplicableError:
            pass
        except BudgetExceededError as error:
            if not _is_rung_trip(error):
                raise
        try:
            return _capped_rung(vs_eliminate, conj, var)
        except UnsupportedEliminationError:
            pass
        except BudgetExceededError as error:
            if not _is_rung_trip(error):
                raise
        all_vars = {v for c in conj for v in c.poly.variables()}
        if len(all_vars) <= 2:
            from repro.qe.cad import cad_eliminate

            return cad_eliminate(conj, var)
        raise UnsupportedEliminationError(
            f"cannot eliminate {var}: degree > 2 and more than two variables "
            f"({sorted(all_vars)}); see DESIGN.md section 4"
        )

    # ----------------------------------------------------------- sample points
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        """A *rational* satisfying point, or None.

        Found by successive elimination and back-substitution through
        rational candidates; conjunctions whose solutions are exclusively
        irrational (e.g. ``x^2 = 2``) yield None even though they are
        satisfiable -- callers needing exact algebraic witnesses should use
        :mod:`repro.qe.cad` directly.
        """
        conds = self._as_conds(atoms)
        simplified = simplify_conj(conds)
        if simplified is None:
            return None
        mentioned = sorted({v for c in simplified for v in c.poly.variables()})
        order = [v for v in mentioned]
        # projections[i] constrains order[:i+1]
        projections: list[Dnf] = [None] * len(order)  # type: ignore[list-item]
        dnf: Dnf = [simplified]
        for i in range(len(order) - 1, -1, -1):
            projections[i] = dnf
            dnf = self._eliminate_var_dnf(dnf, order[i])
            if not dnf:
                return None
        assignment: dict[str, Any] = {}
        for i, var in enumerate(order):
            substituted = _substitute_dnf(projections[i], assignment)
            value = _rational_witness_univariate(substituted, var)
            if value is None:
                return None
            assignment[var] = value
        for name in variables:
            assignment.setdefault(name, Fraction(0))
        return {name: assignment[name] for name in set(variables) | set(order)}

    # -------------------------------------------------------------- internals
    def _checked(self, atoms: Sequence[Atom]) -> tuple[PolyAtom, ...]:
        for atom in atoms:
            self.validate_atom(atom)
        return tuple(atoms)  # type: ignore[arg-type]

    def _as_conds(self, atoms: Sequence[Atom]) -> tuple[SignCond, ...]:
        return tuple(atom.as_cond() for atom in self._checked(atoms))


def _substitute_dnf(dnf: Dnf, assignment: Mapping[str, Fraction]) -> Dnf:
    """Substitute rational values into a DNF, simplifying ground conditions."""
    substitution = {
        name: Polynomial.constant(value) for name, value in assignment.items()
    }
    result: Dnf = []
    for conj in dnf:
        new_conds = [
            SignCond(c.poly.substitute(substitution), c.op) for c in conj
        ]
        simplified = simplify_conj(new_conds)
        if simplified is not None:
            result.append(simplified)
    return result


def _rational_witness_univariate(dnf: Dnf, var: str) -> Fraction | None:
    """A rational value of ``var`` satisfying some branch of a univariate DNF."""
    from repro.poly.univariate import SturmContext, UPoly, rational_roots

    for conj in dnf:
        if not conj:
            return Fraction(0)
        candidates: list[Fraction] = [Fraction(0)]
        bound = Fraction(1)
        separators: list[Fraction] = []
        for cond in conj:
            coeffs = cond.poly.coefficients_in(var)
            rational_coeffs = []
            ok = True
            for c in coeffs:
                if not c.is_constant():
                    ok = False
                    break
                rational_coeffs.append(c.constant_value())
            if not ok:
                continue
            upoly = UPoly.from_fractions(rational_coeffs)
            if upoly.degree() < 1:
                continue
            candidates.extend(rational_roots(upoly))
            context = SturmContext(upoly)
            roots = context.isolate_roots()
            for root in roots:
                if root.is_exact:
                    candidates.append(root.low)
                separators.extend([root.low, root.high])
            poly_bound = upoly.cauchy_root_bound()
            if poly_bound > bound:
                bound = poly_bound
        separators.sort()
        candidates.extend([-bound - 1, bound + 1])
        for left, right in zip(separators, separators[1:]):
            if left < right:
                candidates.append((left + right) / 2)
        candidates.extend(separators)
        for value in candidates:
            if all(cond.evaluate({var: value}) for cond in conj):
                return value
    return None
