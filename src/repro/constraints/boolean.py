"""Boolean equality constraints as a :class:`ConstraintTheory` (Section 5).

The domain is a free boolean algebra ``B_m``; an atom is a single equation
``t(xs, cs) = 0`` (one equation per generalized tuple suffices -- Section 5.2
shows how to merge several).  Quantifier elimination is Boole's lemma and
canonical forms are DNF tables, so the theory plugs into the generic CQL
machinery; note however that, as the paper discusses (Section 5.3), this
theory is *not* "efficient" like the pointwise ones -- the data complexity is
Pi-2-p-hard (Theorem 5.11) -- and negation is not supported (``t != 0`` is
not a boolean equation), so only positive Datalog applies.

The heavy lifting lives in :mod:`repro.boolean_algebra`; this module adapts
it to the shared interface used by the generic evaluators and the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.boole import boole_eliminate_table, solve_constraint
from repro.boolean_algebra.datalog_bool import element_as_term
from repro.boolean_algebra.terms import (
    BoolTerm,
    BVar,
    BXor,
    Table,
    standard_constants,
    term_table,
)
from repro.constraints.base import Conjunction, ConstraintTheory, TheoryCache
from repro.errors import TheoryError
from repro.logic.syntax import Atom, Formula


@dataclass(frozen=True, slots=True)
class BooleanConstraintAtom(Atom):
    """The constraint ``term = 0`` over the given free algebra."""

    term: BoolTerm
    algebra: FreeBooleanAlgebra

    def variables(self) -> frozenset[str]:
        return self.term.variables()

    def rename(self, mapping: Mapping[str, str]) -> "BooleanConstraintAtom":
        substitution = {old: BVar(new) for old, new in mapping.items()}
        return BooleanConstraintAtom(self.term.substitute(substitution), self.algebra)

    def holds(self, assignment: Mapping[str, Any]) -> bool:
        constants = standard_constants(self.algebra)
        value = self.term.evaluate(self.algebra, constants, assignment)
        return self.algebra.is_zero(value)

    def __str__(self) -> str:
        return f"{self.term} = 0"


class BooleanTheory(ConstraintTheory):
    """Boolean equality constraints over a fixed free algebra ``B_m``."""

    name = "boolean"

    def __init__(
        self, algebra: FreeBooleanAlgebra, cache: TheoryCache | None = None
    ) -> None:
        super().__init__(cache)
        self.algebra = algebra
        self.constants = standard_constants(algebra)

    # ------------------------------------------------------------- builders
    def zero_of(self, term: BoolTerm) -> BooleanConstraintAtom:
        """The atom ``term = 0``."""
        return BooleanConstraintAtom(term, self.algebra)

    def equals(self, left: BoolTerm, right: BoolTerm) -> BooleanConstraintAtom:
        """``left = right`` encoded as ``left xor right = 0``."""
        return BooleanConstraintAtom(BXor(left, right), self.algebra)

    # ---------------------------------------------------------------- theory
    def validate_atom(self, atom: Atom) -> None:
        if not isinstance(atom, BooleanConstraintAtom):
            raise TheoryError(f"{atom!r} is not a boolean constraint atom")
        if atom.algebra != self.algebra:
            raise TheoryError("atom belongs to a different boolean algebra")

    def negate_atom(self, atom: Atom) -> Formula:
        raise TheoryError(
            "boolean equality constraints are not closed under negation; "
            "use positive Datalog (Section 5 of the paper)"
        )

    def equality(self, left: object, right: object) -> BooleanConstraintAtom:
        return self.equals(self._as_term(left), self._as_term(right))

    def _as_term(self, value: object) -> BoolTerm:
        if isinstance(value, BoolTerm):
            return value
        if isinstance(value, str):
            return BVar(value)
        if isinstance(value, frozenset):
            return element_as_term(value, self.algebra)
        raise TheoryError(f"cannot interpret {value!r} as a boolean term")

    def atom_constants(self, atom: Atom) -> frozenset:
        self.validate_atom(atom)
        assert isinstance(atom, BooleanConstraintAtom)
        return atom.term.constants()

    # ---------------------------------------------------------------- solver
    def _joined(self, atoms: Sequence[Atom]) -> tuple[Table, tuple[str, ...]]:
        """Merge a conjunction into one table (``a=0 and b=0`` iff ``a|b=0``)."""
        variables = sorted({v for a in self._checked(atoms) for v in a.variables()})
        merged: Table | None = None
        for atom in self._checked(atoms):
            table = term_table(atom.term, variables, self.algebra, self.constants)
            if merged is None:
                merged = table
            else:
                merged = tuple(
                    self.algebra.join(a, b) for a, b in zip(merged, table)
                )
        if merged is None:
            merged = (self.algebra.zero(),)
            variables = []
        return merged, tuple(variables)

    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        table, names = self._joined(atoms)
        current, remaining = table, names
        for name in names:
            current, remaining = boole_eliminate_table(current, remaining, name)
        return self.algebra.is_zero(current[0])

    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        if not self.is_satisfiable(atoms):
            return None
        table, names = self._joined(atoms)
        term = self._table_as_term(table, names)
        return (BooleanConstraintAtom(term, self.algebra),)

    def _table_as_term(self, table: Table, names: Sequence[str]) -> BoolTerm:
        """The DNF term of a table (the Section 5.1 disjunctive normal form)."""
        from repro.boolean_algebra.datalog_bool import table_as_term

        return table_as_term(table, names, self.algebra)

    # ---------------------------------------------------- quantifier elimination
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        table, names = self._joined(atoms)
        for name in drop:
            table, names = boole_eliminate_table(table, names, name)
        if len(names) == 0 and not self.algebra.is_zero(table[0]):
            return []
        term = self._table_as_term(table, names)
        return [(BooleanConstraintAtom(term, self.algebra),)]

    # ----------------------------------------------------------- sample points
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        merged_term = None
        for atom in self._checked(atoms):
            merged_term = (
                atom.term if merged_term is None else merged_term | atom.term
            )
        if merged_term is None:
            return {name: self.algebra.zero() for name in variables}
        solution = solve_constraint(merged_term, self.algebra, self.constants)
        if solution is None:
            return None
        for name in variables:
            solution.setdefault(name, self.algebra.zero())
        return solution

    # ------------------------------------------------- approximate entailment
    def entails(self, atoms: Sequence[Atom], consequence: Atom) -> bool:
        """Sufficient test: pointwise order of tables.

        ``t1 = 0`` entails ``t2 = 0`` whenever ``t2 <= t1`` as functions.
        (Complete entailment would require negation, which the theory lacks.)
        """
        self.validate_atom(consequence)
        assert isinstance(consequence, BooleanConstraintAtom)
        scope = sorted(
            {v for a in self._checked(atoms) for v in a.variables()}
            | consequence.variables()
        )
        table, names = self._joined(atoms)
        from repro.boolean_algebra.terms import table_extend

        if tuple(scope) != names:
            table = table_extend(table, names, tuple(scope))
        other = term_table(
            consequence.term, tuple(scope), self.algebra, self.constants
        )
        return all(self.algebra.leq(b, a) for a, b in zip(table, other))

    def equivalent(self, left: Sequence[Atom], right: Sequence[Atom]) -> bool:
        """Exact when both sides are satisfiable (tables determine solution
        sets then); unsatisfiable sides compare by satisfiability only."""
        left_sat = self.is_satisfiable(left)
        right_sat = self.is_satisfiable(right)
        if not left_sat or not right_sat:
            return left_sat == right_sat
        left_table, left_names = self._joined(left)
        right_table, right_names = self._joined(right)
        if left_names != right_names:
            union = sorted(set(left_names) | set(right_names))
            from repro.boolean_algebra.terms import table_extend

            left_table = table_extend(left_table, left_names, union)
            right_table = table_extend(right_table, right_names, union)
        return left_table == right_table

    # -------------------------------------------------------------- internals
    def _checked(self, atoms: Sequence[Atom]) -> tuple[BooleanConstraintAtom, ...]:
        for atom in atoms:
            self.validate_atom(atom)
        return tuple(atoms)  # type: ignore[arg-type]
