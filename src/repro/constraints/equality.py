"""Equality constraints over an infinite domain (Definition 1.2.3, Section 4).

Atoms are ``x = y``, ``x = c``, ``x != y``, ``x != c`` over a countably
infinite domain *without* order (the paper uses the integers; we allow any
hashable constants).  The crucial property exploited everywhere is the
infiniteness of the domain: a variable constrained only by finitely many
disequalities always has a witness, which is why the relational calculus with
these constraints is closed (Theorem 4.11) while it is not closed over a
finite domain.

Satisfiability is union-find on equalities plus disequality checks;
elimination substitutes forced equalities and otherwise simply drops the
variable; canonical forms are minimal networks as in the dense-order theory
(here trivially exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.constraints.base import Conjunction, ConstraintTheory, TheoryCache
from repro.constraints.terms import (
    Const,
    Term,
    Var,
    eval_term,
    rename_term,
    term_sort_key,
)
from repro.errors import TheoryError
from repro.logic.syntax import Atom, Formula


def _as_eq_term(value: object) -> Term:
    """Terms of the equality theory: strings are variables, anything else a constant."""
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)


def const(value: object) -> Const:
    """Explicitly build a constant term (needed for string-valued constants)."""
    return Const(value)


@dataclass(frozen=True, slots=True)
class EqualityAtom(Atom):
    """An atom ``left op right`` with op one of ``=``, ``!=``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in ("=", "!="):
            raise TheoryError(f"bad equality operator {self.op!r}")
        if term_sort_key(self.right) < term_sort_key(self.left):
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)

    def variables(self) -> frozenset[str]:
        names = set()
        for term in (self.left, self.right):
            if isinstance(term, Var):
                names.add(term.name)
        return frozenset(names)

    def rename(self, mapping: Mapping[str, str]) -> "EqualityAtom":
        return EqualityAtom(
            self.op, rename_term(self.left, mapping), rename_term(self.right, mapping)
        )

    def holds(self, assignment: Mapping[str, Any]) -> bool:
        lhs = eval_term(self.left, assignment)
        rhs = eval_term(self.right, assignment)
        return (lhs == rhs) if self.op == "=" else (lhs != rhs)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def eq(left: object, right: object) -> EqualityAtom:
    """``left = right``"""
    return EqualityAtom("=", _as_eq_term(left), _as_eq_term(right))


def _default_fresh(i: int) -> int:
    """The i-th synthetic domain element: integers counted down from -1."""
    return -(i + 1)


def ne(left: object, right: object) -> EqualityAtom:
    """``left != right``"""
    return EqualityAtom("!=", _as_eq_term(left), _as_eq_term(right))


class _UnionFind:
    """Union-find over terms, with constant-aware merge failure detection."""

    def __init__(self, terms: Iterable[Term]) -> None:
        self.parent: dict[Term, Term] = {t: t for t in terms}

    def find(self, term: Term) -> Term:
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[term] != root:
            self.parent[term], term = root, self.parent[term]
        return root

    @staticmethod
    def _rep_key(term: Term) -> tuple:
        # constants are preferred as class representatives, then sort order
        return (0 if isinstance(term, Const) else 1, term_sort_key(term))

    def union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rep_key(rb) < self._rep_key(ra):
            ra, rb = rb, ra
        self.parent[rb] = ra


class EqualityTheory(ConstraintTheory):
    """The theory of equality with constants over an infinite domain."""

    name = "equality"

    eq = staticmethod(eq)
    ne = staticmethod(ne)
    const = staticmethod(const)

    def __init__(
        self,
        fresh_factory: Callable[[int], object] | None = None,
        cache: TheoryCache | None = None,
    ) -> None:
        """``fresh_factory(i)`` yields the i-th synthetic domain element.

        Sample points for variables constrained only by disequalities need
        arbitrarily many fresh domain elements; by default integers counted
        downward from -1 are used (tests that care can inject a factory).
        """
        super().__init__(cache)
        # module-level default (not a lambda) so the theory pickles across
        # the sharded executor's process boundary
        self._fresh_factory = fresh_factory or _default_fresh

    def validate_atom(self, atom: Atom) -> None:
        if not isinstance(atom, EqualityAtom):
            raise TheoryError(f"{atom!r} is not an equality atom")

    def negate_atom(self, atom: Atom) -> Formula:
        self.validate_atom(atom)
        assert isinstance(atom, EqualityAtom)
        flipped = "!=" if atom.op == "=" else "="
        return EqualityAtom(flipped, atom.left, atom.right)

    def equality(self, left: object, right: object) -> EqualityAtom:
        return eq(left, right)

    def constant(self, value: object) -> Const:
        return value if isinstance(value, Const) else Const(value)

    def atom_constants(self, atom: Atom) -> frozenset:
        self.validate_atom(atom)
        assert isinstance(atom, EqualityAtom)
        values = set()
        for term in (atom.left, atom.right):
            if isinstance(term, Const):
                values.add(term.value)
        return frozenset(values)

    # ---------------------------------------------------------------- solver
    def _closure(
        self, atoms: Sequence[EqualityAtom]
    ) -> tuple[_UnionFind, list[tuple[Term, Term]]] | None:
        """Union-find closure; ``None`` if inconsistent."""
        terms: set[Term] = set()
        for atom in atoms:
            terms.add(atom.left)
            terms.add(atom.right)
        uf = _UnionFind(terms)
        for atom in atoms:
            if atom.op == "=":
                uf.union(atom.left, atom.right)
        # distinct constants must stay distinct
        roots_of_constants: dict[Term, Const] = {}
        for term in terms:
            if isinstance(term, Const):
                root = uf.find(term)
                seen = roots_of_constants.get(root)
                if seen is not None and seen != term:
                    return None
                roots_of_constants[root] = term
        disequalities = []
        for atom in atoms:
            if atom.op == "!=":
                if uf.find(atom.left) == uf.find(atom.right):
                    return None
                disequalities.append((atom.left, atom.right))
        return uf, disequalities

    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        return self._closure(self._checked(atoms)) is not None

    def pinned_constants(self, atoms: Sequence[Atom]) -> Mapping[str, Any]:
        """Syntactic var = const pins (exact for canonical point tuples)."""
        pins: dict[str, Any] = {}
        for atom in atoms:
            if isinstance(atom, EqualityAtom) and atom.op == "=":
                if isinstance(atom.left, Var) and isinstance(atom.right, Const):
                    pins[atom.left.name] = atom.right.value
                elif isinstance(atom.left, Const) and isinstance(atom.right, Var):
                    pins[atom.right.name] = atom.left.value
        return pins

    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        checked = self._checked(atoms)
        closed = self._closure(checked)
        if closed is None:
            return None
        uf, disequalities = closed
        canonical: set[EqualityAtom] = set()
        # each non-representative term is equated to its class representative
        for term in uf.parent:
            root = uf.find(term)
            if root != term:
                canonical.add(EqualityAtom("=", root, term))
        # disequalities between representatives, skipping constant pairs
        # (distinct constants are unequal by definition)
        for left, right in disequalities:
            rl, rr = uf.find(left), uf.find(right)
            if isinstance(rl, Const) and isinstance(rr, Const):
                continue
            canonical.add(EqualityAtom("!=", rl, rr))
        return tuple(sorted(canonical, key=str))

    # ---------------------------------------------------- quantifier elimination
    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        current = list(self._checked(atoms))
        for name in drop:
            result = self._eliminate_one(current, name)
            if result is None:
                return []
            current = result
        if self._closure(current) is None:
            return []
        return [tuple(current)]

    def _eliminate_one(
        self, atoms: list[EqualityAtom], name: str
    ) -> list[EqualityAtom] | None:
        closed = self._closure(atoms)
        if closed is None:
            return None
        uf, _ = closed
        var = Var(name)
        if var not in uf.parent:
            return list(atoms)
        partner = next(
            (t for t in uf.parent if t != var and uf.find(t) == uf.find(var)), None
        )
        result: list[EqualityAtom] = []
        for atom in atoms:
            if var not in (atom.left, atom.right):
                result.append(atom)
                continue
            if partner is None:
                # x appears only in disequalities (or x = x): the infinite
                # domain always provides a witness, so they vanish
                continue
            left = partner if atom.left == var else atom.left
            right = partner if atom.right == var else atom.right
            if left == right:
                if atom.op == "!=":
                    return None
                continue
            if isinstance(left, Const) and isinstance(right, Const):
                same = left.value == right.value
                if (atom.op == "=" and not same) or (atom.op == "!=" and same):
                    return None
                continue
            result.append(EqualityAtom(atom.op, left, right))
        return result

    # ----------------------------------------------------------- sample points
    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        checked = self._checked(atoms)
        closed = self._closure(checked)
        if closed is None:
            return None
        uf, disequalities = closed
        values: dict[Term, Any] = {}
        used: set[Any] = set()
        fresh_index = 0

        def fresh() -> Any:
            nonlocal fresh_index
            while True:
                candidate = self._fresh_factory(fresh_index)
                fresh_index += 1
                if candidate not in used:
                    return candidate

        # constants fix their classes
        for term in uf.parent:
            if isinstance(term, Const):
                values[uf.find(term)] = term.value
                used.add(term.value)
        # remaining classes get fresh pairwise-distinct elements, which
        # satisfies every disequality at once
        for term in uf.parent:
            root = uf.find(term)
            if root not in values:
                values[root] = fresh()
                used.add(values[root])
        assignment: dict[str, Any] = {}
        for name in variables:
            var = Var(name)
            if var in uf.parent:
                assignment[name] = values[uf.find(var)]
            else:
                assignment[name] = fresh()
        return assignment

    # -------------------------------------------------------------- internals
    def _checked(self, atoms: Sequence[Atom]) -> tuple[EqualityAtom, ...]:
        for atom in atoms:
            self.validate_atom(atom)
        return tuple(atoms)  # type: ignore[arg-type]
