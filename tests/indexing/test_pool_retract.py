"""Regression: retraction must invalidate suffix-cursor index entries.

The pool's incremental catch-up assumes relations only grow.  Before the
versioned-rebuild path, a ``discard`` left the removed tuple in the index
(a stale candidate that is satisfiable with the probe bound but no longer
in the relation) and left the cursor pointing past the end, so later
appends could be missed too.  Incremental view maintenance retracts all
the time, so both failure modes get locked down here.
"""

from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.generalized import GeneralizedDatabase
from repro.indexing.pool import JoinIndexPool

theory = DenseOrderTheory()


def _relation(points, name="E"):
    db = GeneralizedDatabase(theory)
    relation = db.create_relation(name, ("x", "y"))
    for a, b in points:
        relation.add_point([Fraction(a), Fraction(b)])
    return relation


def _point(relation, a, b):
    """The stored tuple for the ground point (a, b)."""
    for item in relation:
        if item.holds({"x": Fraction(a), "y": Fraction(b)}):
            return item
    raise AssertionError(f"({a}, {b}) not in {relation.name}")


class TestRetractInvalidation:
    def test_retract_drops_stale_candidates(self):
        relation = _relation([(i, i + 1) for i in range(6)])
        pool = JoinIndexPool(theory)
        hits = pool.probe(relation, "x", Fraction(3), Fraction(3))
        assert hits is not None and len(hits) == 1
        assert relation.discard(_point(relation, 3, 4))
        hits = pool.probe(relation, "x", Fraction(3), Fraction(3))
        assert hits == []  # the stale entry is gone after the rebuild
        assert pool.rebuilds == 1

    def test_append_after_retract_is_indexed(self):
        # cursor == 3 > len == 2 after a discard: the suffix scheme would
        # never index the re-appended tuple
        relation = _relation([(0, 1), (1, 2), (2, 3)])
        pool = JoinIndexPool(theory)
        assert len(pool.probe(relation, "x", Fraction(2), Fraction(2))) == 1
        assert relation.discard(_point(relation, 2, 3))
        relation.add_point([Fraction(9), Fraction(10)])
        hits = pool.probe(relation, "x", Fraction(9), Fraction(9))
        assert hits is not None and len(hits) == 1
        assert pool.probe(relation, "x", Fraction(2), Fraction(2)) == []

    def test_retract_then_reinsert_round_trips(self):
        relation = _relation([(i, i + 1) for i in range(4)])
        pool = JoinIndexPool(theory)
        pool.probe(relation, "x", Fraction(1), Fraction(1))
        item = _point(relation, 1, 2)
        assert relation.discard(item)
        assert pool.probe(relation, "x", Fraction(1), Fraction(1)) == []
        relation.add_point([Fraction(1), Fraction(2)])
        hits = pool.probe(relation, "x", Fraction(1), Fraction(1))
        assert hits is not None and len(hits) == 1

    def test_insert_only_path_never_rebuilds(self):
        relation = _relation([(0, 1)])
        pool = JoinIndexPool(theory)
        for i in range(1, 8):
            pool.probe(relation, "x", Fraction(i - 1), Fraction(i - 1))
            relation.add_point([Fraction(i), Fraction(i + 1)])
        assert pool.rebuilds == 0
        assert pool.index_count() == 1

    def test_clear_invalidates(self):
        relation = _relation([(i, i + 1) for i in range(5)])
        pool = JoinIndexPool(theory)
        assert len(pool.probe(relation, "x", Fraction(0), Fraction(4))) == 5
        relation.clear()
        assert pool.probe(relation, "x", Fraction(0), Fraction(4)) == []
        relation.add_point([Fraction(2), Fraction(2)])
        assert len(pool.probe(relation, "x", Fraction(0), Fraction(4))) == 1


class TestHandleRetractInvalidation:
    def test_handle_sees_retraction(self):
        relation = _relation([(i, i + 1) for i in range(6)])
        pool = JoinIndexPool(theory)
        handle = pool.handle(relation, "x")
        assert len(handle.probe(Fraction(4), Fraction(4))) == 1
        assert relation.discard(_point(relation, 4, 5))
        assert handle.probe(Fraction(4), Fraction(4)) == []
        assert pool.rebuilds == 1

    def test_handle_and_direct_probe_share_rebuild(self):
        relation = _relation([(i, i + 1) for i in range(4)])
        pool = JoinIndexPool(theory)
        handle = pool.handle(relation, "x")
        handle.probe(Fraction(0), Fraction(3))
        assert relation.discard(_point(relation, 0, 1))
        # the direct path rebuilds the shared entry ...
        assert pool.probe(relation, "x", Fraction(0), Fraction(0)) == []
        assert pool.rebuilds == 1
        # ... and the handle sees the rebuilt index without a second rebuild
        assert handle.probe(Fraction(0), Fraction(0)) == []
        assert pool.rebuilds == 1
