"""JoinIndexPool: lazy build, incremental catch-up, probe soundness."""

from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.indexing.pool import JoinIndexPool

theory = DenseOrderTheory()


def _relation(points):
    db = GeneralizedDatabase(theory)
    relation = db.create_relation("E", ("x", "y"))
    for a, b in points:
        relation.add_point([Fraction(a), Fraction(b)])
    return relation


class TestSupport:
    def test_dense_order_supported(self):
        assert JoinIndexPool(theory).supported

    def test_equality_unsupported_probes_none(self):
        pool = JoinIndexPool(EqualityTheory())
        assert not pool.supported
        assert pool.probe(_relation([(0, 1)]), "x", Fraction(0), Fraction(0)) is None

    def test_unbounded_probe_is_none(self):
        pool = JoinIndexPool(theory)
        assert pool.probe(_relation([(0, 1)]), "x", None, None) is None

    def test_unknown_attribute_is_none(self):
        pool = JoinIndexPool(theory)
        assert pool.probe(_relation([(0, 1)]), "zzz", Fraction(0), None) is None


class TestProbeSoundness:
    def test_exact_pin_finds_all_matches(self):
        relation = _relation([(i, i + 1) for i in range(10)])
        pool = JoinIndexPool(theory)
        hits = pool.probe(relation, "x", Fraction(4), Fraction(4))
        assert hits is not None
        matching = [t for t in relation if t in hits]
        # no false negatives: the only tuple with x = 4 is found
        assert len([t for t in hits]) >= 1
        assert any(
            str(atom).find("4") >= 0 for t in matching for atom in t.atoms
        )
        assert len(hits) < len(relation)

    def test_interval_tuples_candidate_when_satisfiable(self):
        # a tuple with 2 < x < 5 must be a candidate for every probe that
        # can meet its projection; a probe pinned to the open endpoint may
        # be excluded (the join would be unsatisfiable anyway), never one
        # inside the interval
        db = GeneralizedDatabase(theory)
        relation = db.create_relation("R", ("x",))
        relation.add_tuple([theory.lt(Fraction(2), "x"), theory.lt("x", Fraction(5))])
        pool = JoinIndexPool(theory)
        hits = pool.probe(relation, "x", Fraction(3), Fraction(3))
        assert hits is not None and len(hits) == 1
        near_edge = pool.probe(relation, "x", Fraction("4.999"), Fraction("4.999"))
        assert near_edge is not None and len(near_edge) == 1

    def test_disjoint_probe_returns_empty(self):
        relation = _relation([(i, i + 1) for i in range(6)])
        pool = JoinIndexPool(theory)
        hits = pool.probe(relation, "x", Fraction(100), Fraction(200))
        assert hits == []


class TestIncrementalMaintenance:
    def test_index_catches_up_as_relation_grows(self):
        relation = _relation([(0, 1), (1, 2)])
        pool = JoinIndexPool(theory)
        assert pool.probe(relation, "x", Fraction(5), Fraction(5)) == []
        # grow the relation (fixpoint rounds only ever add)
        relation.add_point([Fraction(5), Fraction(6)])
        relation.add_point([Fraction(7), Fraction(8)])
        hits = pool.probe(relation, "x", Fraction(5), Fraction(5))
        assert hits is not None and len(hits) == 1
        # the pool reused the same index rather than rebuilding
        assert pool.index_count() == 1

    def test_one_index_per_relation_attribute_pair(self):
        relation = _relation([(0, 1)])
        pool = JoinIndexPool(theory)
        pool.probe(relation, "x", Fraction(0), None)
        pool.probe(relation, "y", Fraction(1), None)
        pool.probe(relation, "x", None, Fraction(3))
        assert pool.index_count() == 2

    def test_counters_accumulate(self):
        relation = _relation([(i, i + 1) for i in range(8)])
        pool = JoinIndexPool(theory)
        pool.probe(relation, "x", Fraction(1), Fraction(1))
        pool.probe(relation, "x", Fraction(2), Fraction(2))
        assert pool.probes == 2
        assert pool.candidates >= 2
        assert pool.scan_avoided > 0


class TestProbeHandles:
    """Pre-resolved handles: same answers and counters as direct probes."""

    def test_handle_matches_direct_probe(self):
        relation = _relation([(i, i + 1) for i in range(10)])
        pool = JoinIndexPool(theory)
        handle = pool.handle(relation, "x")
        assert handle is not None
        assert handle.probe(Fraction(4), Fraction(4)) == pool.probe(
            relation, "x", Fraction(4), Fraction(4)
        )

    def test_handle_declines_like_probe(self):
        relation = _relation([(0, 1)])
        assert JoinIndexPool(EqualityTheory()).handle(relation, "x") is None
        assert JoinIndexPool(theory).handle(relation, "zzz") is None
        handle = JoinIndexPool(theory).handle(relation, "x")
        assert handle.probe(None, None) is None

    def test_handle_shares_index_and_counters(self):
        relation = _relation([(i, i + 1) for i in range(6)])
        pool = JoinIndexPool(theory)
        handle = pool.handle(relation, "x")
        handle.probe(Fraction(2), Fraction(2))
        assert pool.index_count() == 1  # no second index behind the handle
        assert pool.probes == 1 and pool.candidates >= 1
        # and the direct path reuses the handle's index entry
        pool.probe(relation, "x", Fraction(3), Fraction(3))
        assert pool.index_count() == 1
        assert pool.probes == 2

    def test_handle_sees_incremental_growth(self):
        relation = _relation([(0, 1)])
        pool = JoinIndexPool(theory)
        handle = pool.handle(relation, "x")
        assert handle.probe(Fraction(7), Fraction(7)) == []
        relation.add_point([Fraction(7), Fraction(8)])
        assert len(handle.probe(Fraction(7), Fraction(7))) == 1
