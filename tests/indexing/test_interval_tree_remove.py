"""Regression: IntervalTree.remove must not evict a same-endpoint sibling.

``Interval`` equality deliberately ignores payloads (``compare=False``),
so a payload-blind removal of ``[1, 5]@"a"`` used to delete whichever
same-endpoint interval the node happened to list first -- silently
dropping ``[1, 5]@"b"`` from stab results.  ``remove`` now prefers an
exact payload (identity) match before falling back to endpoint equality.
"""

from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree


def _payloads(intervals):
    return sorted(iv.payload for iv in intervals)


def test_remove_prefers_exact_payload_match():
    tree = IntervalTree()
    a = Interval.closed(1, 5, payload="a")
    b = Interval.closed(1, 5, payload="b")
    tree.insert(a)
    tree.insert(b)

    assert tree.remove(a)
    assert _payloads(tree.stab(3)) == ["b"]
    assert _payloads(tree.items()) == ["b"]


def test_remove_other_sibling_first():
    tree = IntervalTree()
    a = Interval.closed(1, 5, payload="a")
    b = Interval.closed(1, 5, payload="b")
    tree.insert(a)
    tree.insert(b)

    assert tree.remove(b)
    assert _payloads(tree.stab(3)) == ["a"]


def test_remove_each_of_many_same_endpoint_payloads():
    tree = IntervalTree()
    payloads = ["p0", "p1", "p2", "p3"]
    for payload in payloads:
        tree.insert(Interval.closed(2, 7, payload=payload))
    # also some distinct-endpoint noise around the hot node
    tree.insert(Interval.closed(0, 1, payload="noise-low"))
    tree.insert(Interval.closed(8, 9, payload="noise-high"))

    for victim in ["p2", "p0", "p3"]:
        assert tree.remove(Interval.closed(2, 7, payload=victim))
        assert victim not in _payloads(tree.stab(4))

    assert _payloads(tree.stab(4)) == ["p1"]
    assert len(tree) == 3  # p1 + the two noise intervals


def test_remove_without_payload_match_still_removes_one():
    """Endpoint-equal removal with an unknown payload falls back to
    removing exactly one same-endpoint occurrence."""
    tree = IntervalTree()
    tree.insert(Interval.closed(1, 5, payload="a"))
    tree.insert(Interval.closed(1, 5, payload="b"))

    assert tree.remove(Interval.closed(1, 5, payload="not-present"))
    assert len(tree) == 1
    assert len(tree.stab(3)) == 1
    assert not tree.remove(Interval.closed(9, 10, payload="missing"))
