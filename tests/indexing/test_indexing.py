"""Tests for intervals, the interval tree, the PST, and the generalized index."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt
from repro.core.generalized import GeneralizedRelation, GeneralizedTuple
from repro.indexing.generalized_index import (
    GeneralizedIndex1D,
    NaiveGeneralizedSearch,
    tuple_projection_interval,
)
from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree
from repro.indexing.priority_search_tree import Point, PrioritySearchTree

order = DenseOrderTheory()


class TestInterval:
    def test_contains(self):
        interval = Interval(Fraction(0), Fraction(1), low_open=True)
        assert interval.contains(Fraction(1, 2))
        assert interval.contains(Fraction(1))
        assert not interval.contains(Fraction(0))

    def test_unbounded(self):
        interval = Interval(None, Fraction(3))
        assert interval.contains(Fraction(-1000))
        assert not interval.contains(Fraction(4))

    def test_overlap(self):
        a = Interval.closed(0, 2)
        b = Interval.closed(2, 4)
        c = Interval.closed(3, 5)
        assert a.overlaps(b)  # share the point 2
        assert not a.overlaps(c)
        open_b = Interval(Fraction(2), Fraction(4), low_open=True)
        assert not a.overlaps(open_b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(Fraction(2), Fraction(1))
        with pytest.raises(ValueError):
            Interval(Fraction(1), Fraction(1), low_open=True)


class TestIntervalTree:
    def test_stab(self):
        tree = IntervalTree()
        for i in range(10):
            tree.insert(Interval.closed(i, i + 2, payload=i))
        hits = sorted(h.payload for h in tree.stab(5))
        assert hits == [3, 4, 5]

    def test_overlapping(self):
        tree = IntervalTree()
        for i in range(0, 20, 2):
            tree.insert(Interval.closed(i, i + 1, payload=i))
        hits = sorted(h.payload for h in tree.overlapping(Interval.closed(3, 7)))
        assert hits == [2, 4, 6]

    def test_remove(self):
        tree = IntervalTree()
        a = Interval.closed(0, 5, payload="a")
        b = Interval.closed(0, 5, payload="b")
        tree.insert(a)
        tree.insert(b)
        assert tree.remove(a)
        assert len(tree) == 1
        assert [h.payload for h in tree.stab(3)] == ["b"]
        assert tree.remove(b)
        assert not tree.remove(b)
        assert len(tree) == 0

    def test_balance_height(self):
        tree = IntervalTree()
        n = 256
        for i in range(n):  # sorted insertion: the adversarial case
            tree.insert(Interval.closed(i, i))
        assert tree.height() <= 2 * n.bit_length()

    def test_unbounded_intervals(self):
        tree = IntervalTree()
        tree.insert(Interval(None, Fraction(0), payload="low"))
        tree.insert(Interval(Fraction(0), None, payload="high"))
        assert {h.payload for h in tree.stab(0)} == {"low", "high"}
        assert {h.payload for h in tree.stab(-5)} == {"low"}
        assert {h.payload for h in tree.stab(5)} == {"high"}

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(0, 10)),
            min_size=0,
            max_size=40,
        ),
        st.integers(-25, 25),
    )
    def test_stab_matches_linear_scan(self, spans, query):
        intervals = [
            Interval.closed(lo, lo + width, payload=k)
            for k, (lo, width) in enumerate(spans)
        ]
        tree = IntervalTree(intervals)
        expected = sorted(i.payload for i in intervals if i.contains(Fraction(query)))
        actual = sorted(h.payload for h in tree.stab(query))
        assert actual == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(0, 10)),
            min_size=1,
            max_size=30,
        ),
        st.data(),
    )
    def test_removal_keeps_queries_correct(self, spans, data):
        intervals = [
            Interval.closed(lo, lo + width, payload=k)
            for k, (lo, width) in enumerate(spans)
        ]
        tree = IntervalTree(intervals)
        to_remove = data.draw(
            st.lists(st.sampled_from(intervals), max_size=len(intervals), unique_by=id)
        )
        remaining = list(intervals)
        for interval in to_remove:
            assert tree.remove(interval)
            # remove one with the same endpoints (payload may differ; the
            # tree guarantees multiset semantics on endpoints)
            for candidate in remaining:
                if candidate == interval:
                    remaining.remove(candidate)
                    break
        for query in (-25, -3, 0, 7, 25):
            expected = sorted(
                 (i.low, i.high) for i in remaining if i.contains(Fraction(query))
            )
            actual = sorted((h.low, h.high) for h in tree.stab(query))
            assert actual == expected


class TestPrioritySearchTree:
    def test_basic_query(self):
        points = [Point(Fraction(x), Fraction(y), (x, y)) for x, y in
                  [(1, 5), (2, 1), (3, 4), (5, 2), (8, 0)]]
        pst = PrioritySearchTree(points)
        hits = {p.payload for p in pst.query(Fraction(2), Fraction(6), Fraction(3))}
        assert hits == {(2, 1), (5, 2)}

    def test_stabbing_view(self):
        intervals = [Interval.closed(i, i + 3, payload=i) for i in range(10)]
        pst = PrioritySearchTree.for_intervals(intervals)
        hits = sorted(i.payload for i in pst.stab_intervals(5))
        assert hits == [2, 3, 4, 5]

    def test_insert_and_query(self):
        pst = PrioritySearchTree()
        for i in range(50):
            pst.insert(Point(Fraction(i), Fraction(i % 7), i))
        hits = {p.payload for p in pst.query(Fraction(10), Fraction(20), Fraction(0))}
        expected = {i for i in range(10, 21) if i % 7 == 0}
        assert hits == expected

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-15, 15), st.integers(-15, 15)),
            max_size=30,
        ),
        st.integers(-15, 15),
        st.integers(-15, 15),
        st.integers(-15, 15),
    )
    def test_matches_linear_scan(self, raw_points, x1, x2, y0):
        if x1 > x2:
            x1, x2 = x2, x1
        points = [
            Point(Fraction(x), Fraction(y), k) for k, (x, y) in enumerate(raw_points)
        ]
        pst = PrioritySearchTree(points)
        expected = sorted(
            p.payload for p in points if x1 <= p.x <= x2 and p.y <= y0
        )
        actual = sorted(
            p.payload
            for p in pst.query(Fraction(x1), Fraction(x2), Fraction(y0))
        )
        assert actual == expected


class TestProjection:
    def test_bounded_interval(self):
        item = GeneralizedTuple(("n", "x"), (eq("n", 1), le(0, "x"), lt("x", 5)))
        interval = tuple_projection_interval(item, "x", order)
        assert interval.low == 0 and not interval.low_open
        assert interval.high == 5 and interval.high_open

    def test_derived_bounds(self):
        # x < y and y < 3 projects x onto (-inf, 3)
        item = GeneralizedTuple(("x", "y"), (lt("x", "y"), lt("y", 3)))
        interval = tuple_projection_interval(item, "x", order)
        assert interval.low is None
        assert interval.high == 3 and interval.high_open

    def test_point_projection(self):
        item = GeneralizedTuple(("x",), (eq("x", 7),))
        interval = tuple_projection_interval(item, "x", order)
        assert interval.low == interval.high == 7

    def test_unsat_tuple(self):
        item = GeneralizedTuple(("x",), (lt("x", 0), lt(1, "x")))
        assert tuple_projection_interval(item, "x", order) is None


class TestGeneralizedIndex:
    def _relation(self, n=30):
        relation = GeneralizedRelation("R", ("n", "x"), order)
        for i in range(n):
            relation.add_tuple([eq("n", i), le(2 * i, "x"), le("x", 2 * i + 3)])
        return relation

    def test_search_equals_naive(self):
        relation = self._relation()
        index = GeneralizedIndex1D(relation, "x")
        naive = NaiveGeneralizedSearch(relation, "x")
        fast = index.search(10, 20)
        slow = naive.search(10, 20)
        for i in range(30):
            for x in range(8, 24):
                point = {"n": Fraction(i), "x": Fraction(x)}
                assert fast.contains_point(point) == slow.contains_point(point)

    def test_candidates_pruned(self):
        relation = self._relation(50)
        index = GeneralizedIndex1D(relation, "x")
        candidates = index.candidates(10, 14)
        # only tuples with [2i, 2i+3] intersecting [10,14]: i in 4..7
        assert 3 <= len(candidates) <= 5

    def test_insert_delete(self):
        relation = self._relation(5)
        index = GeneralizedIndex1D(relation, "x")
        new_tuple = GeneralizedTuple(
            ("n", "x"), (eq("n", 99), le(100, "x"), le("x", 101))
        )
        index.insert(new_tuple)
        assert index.candidates(100, 101)
        assert index.delete(new_tuple)
        assert not index.candidates(100, 101)

    def test_open_ended_search(self):
        relation = self._relation(10)
        index = GeneralizedIndex1D(relation, "x")
        result = index.search(None, 3)
        assert result.contains_point({"n": Fraction(0), "x": Fraction(1)})
        assert not result.contains_point({"n": Fraction(5), "x": Fraction(10)})
