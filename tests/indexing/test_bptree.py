"""Tests for the B+-tree (the paper's relational 1-d searching baseline)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexing.bptree import BPlusTree


class TestBasics:
    def test_get(self):
        tree = BPlusTree(branching=4)
        for i in range(50):
            tree.insert(i, f"row{i}")
        assert tree.get(17) == ["row17"]
        assert tree.get(999) == []

    def test_duplicates(self):
        tree = BPlusTree(branching=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert sorted(tree.get(5)) == ["a", "b"]
        assert len(tree) == 2

    def test_range_search(self):
        tree = BPlusTree(branching=5)
        for i in range(100):
            tree.insert(i, i)
        hits = tree.range_search(20, 29)
        assert [k for k, _ in hits] == list(range(20, 30))

    def test_range_empty(self):
        tree = BPlusTree()
        tree.insert(1)
        assert tree.range_search(5, 3) == []
        assert tree.range_search(10, 20) == []

    def test_items_sorted(self):
        tree = BPlusTree(branching=4)
        values = [9, 1, 7, 3, 5, 2, 8]
        for v in values:
            tree.insert(v, v)
        assert [k for k, _ in tree.items()] == sorted(values)

    def test_fraction_keys(self):
        tree = BPlusTree(branching=4)
        tree.insert(Fraction(1, 3), "third")
        tree.insert(Fraction(1, 2), "half")
        hits = tree.range_search(Fraction(1, 3), Fraction(2, 5))
        assert [p for _, p in hits] == ["third"]

    def test_branching_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(branching=2)


class TestRemoval:
    def test_remove(self):
        tree = BPlusTree(branching=4)
        for i in range(30):
            tree.insert(i, i)
        assert tree.remove(10)
        assert tree.get(10) == []
        assert not tree.remove(10)
        assert len(tree) == 29

    def test_remove_specific_payload(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.get(1) == ["b"]


class TestComplexity:
    def test_height_logarithmic(self):
        tree = BPlusTree(branching=16)
        n = 5000
        for i in range(n):
            tree.insert(i, None)
        assert tree.height() <= math.ceil(math.log(n, 8)) + 2

    def test_access_bound_log_plus_output(self):
        # the paper: range search in O(log_B N + K/B) accesses
        tree = BPlusTree(branching=16)
        n = 4096
        for i in range(n):
            tree.insert(i, None)
        tree.stats.reset()
        hits = tree.range_search(1000, 1099)
        assert len(hits) == 100
        bound = math.ceil(math.log(n, 8)) + 2 + math.ceil(100 / 8) + 2
        assert tree.stats.reads <= bound

    def test_point_search_logarithmic_accesses(self):
        tree = BPlusTree(branching=16)
        n = 4096
        for i in range(n):
            tree.insert(i, None)
        tree.stats.reset()
        tree.get(2048)
        assert tree.stats.reads <= math.ceil(math.log(n, 8)) + 2


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), max_size=150),
        st.integers(-110, 110),
        st.integers(-110, 110),
    )
    def test_range_matches_sorted_list(self, keys, low, high):
        if low > high:
            low, high = high, low
        tree = BPlusTree(branching=4)
        for k in keys:
            tree.insert(k, k)
        expected = sorted(k for k in keys if low <= k <= high)
        actual = [k for k, _ in tree.range_search(low, high)]
        assert actual == expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 60), min_size=1, max_size=80), st.data())
    def test_insert_remove_consistency(self, keys, data):
        tree = BPlusTree(branching=4)
        remaining: list[int] = []
        for k in keys:
            tree.insert(k, k)
            remaining.append(k)
        to_remove = data.draw(
            st.lists(st.sampled_from(keys), max_size=len(keys))
        )
        for k in to_remove:
            removed = tree.remove(k, k)
            if k in remaining:
                assert removed
                remaining.remove(k)
            # removing more copies than present eventually fails
        assert [k for k, _ in tree.items()] == sorted(remaining)
