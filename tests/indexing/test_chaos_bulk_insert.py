"""Index structures under ChaosPolicy-interrupted bulk inserts.

Property under test (robustness satellite): a bulk load whose individual
insert operations are interrupted by injected transient faults -- and then
retried per the chaos policy's retry budget -- leaves every index fully
queryable and semantically identical to an uninterrupted build.

Two layers are exercised:

* the bare :class:`IntervalTree`/:class:`BPlusTree` under a driver-level
  retry loop (the fault fires *between* structure mutations, as a failing
  key computation would);
* :class:`GeneralizedIndex1D` over a :func:`harden`-wrapped dense-order
  theory inside a :func:`chaos_scope` -- the real injection path, where
  faults fire inside the theory calls that canonicalize tuples and compute
  key intervals, and :class:`ResilientTheory` retries transparently.
"""

import random
from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le
from repro.core.generalized import GeneralizedRelation
from repro.errors import TransientTheoryError
from repro.indexing.bptree import BPlusTree
from repro.indexing.generalized_index import (
    GeneralizedIndex1D,
    NaiveGeneralizedSearch,
)
from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree
from repro.runtime.chaos import ChaosPolicy, ChaosRuntime, chaos_scope, harden


def _insert_with_retry(runtime, policy, operation):
    """One logical insert under fault injection: retry per the policy."""
    for attempt in range(policy.max_retries + 1):
        try:
            runtime.fire("join")
            operation()
            return
        except TransientTheoryError:
            if attempt == policy.max_retries:
                raise


def _random_intervals(seed, n):
    rng = random.Random(seed)
    intervals = []
    for i in range(n):
        low = Fraction(rng.randint(0, 400), 4)
        high = low + Fraction(rng.randint(0, 40), 4)
        intervals.append(Interval(low, high, payload=i))
    return intervals


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestIntervalTreeChaosBulkInsert:
    def test_queryable_and_consistent_after_retries(self, seed):
        policy = ChaosPolicy(
            seed=seed, p=0.3, sites=("join",), faults=("transient",)
        )
        runtime = ChaosRuntime(policy)
        intervals = _random_intervals(seed, 120)

        tree = IntervalTree()
        for interval in intervals:
            _insert_with_retry(runtime, policy, lambda: tree.insert(interval))
        assert runtime.stats.total_injected > 0  # chaos actually happened

        reference = IntervalTree()
        for interval in intervals:
            reference.insert(interval)

        assert len(tree) == len(reference) == len(intervals)
        assert tree.items() == reference.items()
        # still balanced: AVL height is O(log n)
        assert tree.height() <= 2 * len(intervals).bit_length()
        for probe in range(0, 110, 7):
            value = Fraction(probe)
            expected = sorted(
                (i.payload for i in intervals if i.contains(value)),
            )
            got = sorted(hit.payload for hit in tree.stab(value))
            assert got == expected


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestBPlusTreeChaosBulkInsert:
    def test_queryable_and_consistent_after_retries(self, seed):
        policy = ChaosPolicy(
            seed=seed, p=0.3, sites=("join",), faults=("transient",)
        )
        runtime = ChaosRuntime(policy)
        rng = random.Random(seed)
        pairs = [(rng.randint(0, 500), i) for i in range(200)]

        tree = BPlusTree(branching=8)
        for key, payload in pairs:
            _insert_with_retry(
                runtime, policy, lambda k=key, p=payload: tree.insert(k, p)
            )
        assert runtime.stats.total_injected > 0

        assert len(tree) == len(pairs)
        assert sorted(tree.items()) == sorted(pairs)
        for low, high in [(0, 50), (100, 300), (450, 500)]:
            expected = sorted(
                (k, p) for k, p in pairs if low <= k <= high
            )
            assert sorted(tree.range_search(low, high)) == expected


class TestGeneralizedIndexUnderChaosScope:
    def test_index_built_through_hardened_theory_matches_naive(self):
        policy = ChaosPolicy(seed=4, p=0.2)
        with chaos_scope(policy) as runtime:
            theory = harden(DenseOrderTheory(), policy)
            relation = GeneralizedRelation("R", ("n", "x"), theory)
            for i in range(25):
                relation.add_tuple(
                    [
                        theory.equality("n", Fraction(i)),
                        le(Fraction(i), "x"),
                        le("x", Fraction(i + 3)),
                    ]
                )
            index = GeneralizedIndex1D(relation, "x")
            hits = sorted(
                tuple(str(a) for a in item.atoms)
                for item in index.candidates(5, 9)
            )
        assert runtime.stats.total_injected > 0
        assert len(index) == len(relation) == 25

        # rebuild cleanly and compare against the strawman scan
        clean_theory = DenseOrderTheory()
        clean = GeneralizedRelation("R", ("n", "x"), clean_theory)
        for i in range(25):
            clean.add_tuple(
                [
                    clean_theory.equality("n", Fraction(i)),
                    le(Fraction(i), "x"),
                    le("x", Fraction(i + 3)),
                ]
            )
        clean_index = GeneralizedIndex1D(clean, "x")
        assert hits == sorted(
            tuple(str(a) for a in item.atoms)
            for item in clean_index.candidates(5, 9)
        )
        naive = NaiveGeneralizedSearch(clean, "x")
        assert {
            tuple(str(a) for a in t.atoms) for t in clean_index.search(5, 9)
        } == {tuple(str(a) for a in t.atoms) for t in naive.search(5, 9)}
