"""Cross-validation of Theorem 2.6 via the canonical-database (freeze) technique."""

import random

from hypothesis import given, settings, strategies as st

from repro.constraints.real_poly import poly_eq
from repro.poly.polynomial import Polynomial
from repro.tableaux.containment import (
    canonical_database,
    contained_by_canonical_database,
    contained_linear,
)
from repro.tableaux.tableau import TableauQuery, TableauRow


def _random_query(draw_ints, name, rows=2, width=2):
    """A random linear-equation tableau over one binary relation tag."""
    symbols = []
    table_rows = []
    for r in range(rows):
        row_symbols = tuple(f"{name}_{r}_{c}" for c in range(width))
        symbols.extend(row_symbols)
        table_rows.append(TableauRow("R", row_symbols))
    summary = (f"{name}_s0",)
    constraints = [poly_eq(summary[0], symbols[0])]
    for _ in range(draw_ints(0, 3)):
        a = symbols[draw_ints(0, len(symbols) - 1)]
        b = symbols[draw_ints(0, len(symbols) - 1)]
        if a == b:
            continue
        kind = draw_ints(0, 2)
        pa, pb = Polynomial.variable(a), Polynomial.variable(b)
        if kind == 0:
            constraints.append(poly_eq(pa, pb))
        elif kind == 1:
            constraints.append(poly_eq(pa - pb, draw_ints(0, 2)))
        else:
            constraints.append(poly_eq(pa + pb, draw_ints(0, 4)))
    return TableauQuery(summary, tuple(table_rows), tuple(constraints), name)


class TestCanonicalDatabase:
    def test_freeze_contains_own_summary(self):
        rng = random.Random(5)
        query = _random_query(lambda a, b: rng.randint(a, b), "q")
        frozen = canonical_database(query)
        assert frozen is not None
        db, valuation = frozen
        from repro.tableaux.containment import evaluate_tableau

        output = evaluate_tableau(query, db)
        assert output.contains_values([valuation[s] for s in query.summary])

    def test_inconsistent_query_freezes_to_none(self):
        query = TableauQuery(
            ("s",),
            (TableauRow("R", ("a", "b")),),
            (poly_eq("s", "a"), poly_eq("a", 0), poly_eq("a", 1)),
        )
        assert canonical_database(query) is None
        assert contained_by_canonical_database(query, query)

    def test_generic_freeze_avoids_coincidences(self):
        # without generic values, a and b would both freeze to 0 and the
        # stricter query would spuriously contain the looser one
        loose = TableauQuery(
            ("s1",),
            (TableauRow("R", ("a1", "b1")),),
            (poly_eq("s1", "a1"),),
        )
        strict = TableauQuery(
            ("s2",),
            (TableauRow("R", ("a2", "b2")),),
            (poly_eq("s2", "a2"), poly_eq("a2", "b2")),
        )
        assert contained_by_canonical_database(strict, loose)
        assert not contained_by_canonical_database(loose, strict)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_theorem_26_agrees_with_freeze(self, data):
        def draw(a, b):
            return data.draw(st.integers(a, b))
        phi1 = _random_query(draw, "p")
        phi2 = _random_query(draw, "q")
        via_homomorphism = contained_linear(phi1, phi2)
        via_freeze = contained_by_canonical_database(phi1, phi2)
        assert via_homomorphism == via_freeze, (phi1, phi2)
