"""Tests for tableaux, affine containment (Thm 2.6), and Thm 2.8."""

from fractions import Fraction

import pytest

from repro.constraints.real_poly import RealPolynomialTheory, poly_eq
from repro.core.generalized import GeneralizedDatabase
from repro.errors import ArityError
from repro.poly.polynomial import Polynomial
from repro.tableaux.affine import LinearSystem, contains, equation
from repro.tableaux.containment import (
    contained_linear,
    evaluate_tableau,
    rule_output,
    semiinterval_counterexample,
    symbol_mappings,
)
from repro.tableaux.tableau import TableauQuery, TableauRow, checkbook_query, normalize

poly = RealPolynomialTheory()


class TestLinearSystem:
    def test_consistency(self):
        system = LinearSystem([equation({"x": 1}, 1), equation({"x": 1}, 2)])
        assert not system.consistent

    def test_implication(self):
        # x + y = 3 and x - y = 1 imply x = 2
        system = LinearSystem(
            [equation({"x": 1, "y": 1}, 3), equation({"x": 1, "y": -1}, 1)]
        )
        assert system.implies({"x": 1}, 2)
        assert system.implies({"y": 1}, 1)
        assert not system.implies({"x": 1}, 3)

    def test_rank(self):
        system = LinearSystem(
            [
                equation({"x": 1, "y": 1}, 0),
                equation({"x": 2, "y": 2}, 0),  # redundant
                equation({"y": 1}, 5),
            ]
        )
        assert system.rank() == 2

    def test_containment(self):
        # the line x = y is contained in the plane (trivially, no constraints)
        line = LinearSystem([equation({"x": 1, "y": -1}, 0)])
        assert contains(line, [])
        # and in itself
        assert contains(line, [equation({"x": 1, "y": -1}, 0)])
        # but not in the line x = y + 1
        assert not contains(line, [equation({"x": 1, "y": -1}, 1)])
        # the point (1, 1) is contained in the line x = y
        point = LinearSystem([equation({"x": 1}, 1), equation({"y": 1}, 1)])
        assert contains(point, [equation({"x": 1, "y": -1}, 0)])

    def test_empty_space_contained_everywhere(self):
        empty = LinearSystem([equation({}, 1)])
        assert contains(empty, [equation({"x": 1}, 42)])

    def test_solve_sample(self):
        system = LinearSystem(
            [equation({"x": 1, "y": 1}, 3), equation({"y": 1}, 1)]
        )
        solution = system.solve_sample(["x", "y"])
        assert solution["x"] == 2 and solution["y"] == 1


class TestTableauConstruction:
    def test_normal_form_enforced(self):
        with pytest.raises(ArityError):
            TableauQuery(("x",), (TableauRow("R", ("x",)),))

    def test_normalize_repeats_and_constants(self):
        q = normalize(
            summary=["x"],
            rows=[("R", ["x", "y"]), ("R", ["y", 3])],
        )
        # 5 cells -> 5 distinct variables; 2 repeats + 1 constant = 3 equations
        assert len(set(q.all_symbols())) == 5
        assert len(q.constraints) == 3

    def test_checkbook_structure(self):
        q = checkbook_query()
        assert len(q.summary) == 1
        assert [row.tag for row in q.rows] == ["Expenses", "Savings", "Income"]
        # z repeated thrice + the balance equation
        assert len(q.constraints) >= 3


class TestCheckbookEvaluation:
    def test_balanced_accounts_selected(self):
        q = checkbook_query()
        db = GeneralizedDatabase(poly)
        expenses = db.create_relation("Expenses", ("z", "f", "r", "m"))
        savings = db.create_relation("Savings", ("z", "s", "a", "b"))
        income = db.create_relation("Income", ("z", "w", "i", "c"))
        # user 1 balances: 10+20+5+15 = 45+5
        expenses.add_point([1, 10, 20, 5])
        savings.add_point([1, 15, 0, 0])
        income.add_point([1, 45, 5, 0])
        # user 2 does not: 10+20+5+15 != 40+5
        expenses.add_point([2, 10, 20, 5])
        savings.add_point([2, 15, 0, 0])
        income.add_point([2, 40, 5, 0])
        result = evaluate_tableau(q, db)
        assert result.contains_values([Fraction(1)])
        assert not result.contains_values([Fraction(2)])


class TestSymbolMappings:
    def _pair(self):
        # target: Q(a) :- R(b, c); source: Q(u) :- R(v, w), R(p, q)
        target = TableauQuery(("a",), (TableauRow("R", ("b", "c")),))
        source = TableauQuery(
            ("u",), (TableauRow("R", ("v", "w")), TableauRow("R", ("p", "q")))
        )
        return target, source

    def test_count(self):
        target, source = self._pair()
        mappings = list(symbol_mappings(target, source))
        assert len(mappings) == 2  # one per choice of source row

    def test_tag_respected(self):
        target = TableauQuery(("a",), (TableauRow("S", ("b",)),))
        source = TableauQuery(("u",), (TableauRow("R", ("v",)),))
        assert list(symbol_mappings(target, source)) == []

    def test_summary_positional(self):
        target, source = self._pair()
        for mapping in symbol_mappings(target, source):
            assert mapping["a"] == "u"


class TestTheorem26:
    def test_identical_queries_contained(self):
        q = checkbook_query()
        assert contained_linear(q, q)

    def test_specialization_contained_in_generalization(self):
        # phi1: R(x1, y1) with x1 = y1  is contained in  phi2: R(x2, y2)
        phi1 = TableauQuery(
            ("a1", "b1"),
            (TableauRow("R", ("x1", "y1")),),
            (
                poly_eq("a1", "x1"),
                poly_eq("b1", "y1"),
                poly_eq("x1", "y1"),
            ),
        )
        phi2 = TableauQuery(
            ("a2", "b2"),
            (TableauRow("R", ("x2", "y2")),),
            (poly_eq("a2", "x2"), poly_eq("b2", "y2")),
        )
        assert contained_linear(phi1, phi2)
        assert not contained_linear(phi2, phi1)

    def test_linear_equation_implication(self):
        # phi1 requires x + y = 2 and x - y = 0; phi2 requires x = 1
        phi1 = TableauQuery(
            ("a1",),
            (TableauRow("R", ("x1", "y1")),),
            (
                poly_eq("a1", "x1"),
                poly_eq(
                    Polynomial.variable("x1") + Polynomial.variable("y1"), 2
                ),
                poly_eq(
                    Polynomial.variable("x1") - Polynomial.variable("y1"), 0
                ),
            ),
        )
        phi2 = TableauQuery(
            ("a2",),
            (TableauRow("R", ("x2", "y2")),),
            (poly_eq("a2", "x2"), poly_eq("x2", 1)),
        )
        assert contained_linear(phi1, phi2)
        assert not contained_linear(phi2, phi1)

    def test_empty_query_contained_in_everything(self):
        phi1 = TableauQuery(
            ("a1",),
            (TableauRow("R", ("x1",)),),
            (poly_eq("x1", 0), poly_eq("x1", 1), poly_eq("a1", "x1")),
        )
        phi2 = TableauQuery(
            ("a2",),
            (TableauRow("R", ("x2",)),),
            (poly_eq("a2", "x2"), poly_eq("x2", 7)),
        )
        assert contained_linear(phi1, phi2)

    def test_containment_validated_by_evaluation(self):
        # build a small database and check output inclusion matches the decision
        phi1 = TableauQuery(
            ("a1", "b1"),
            (TableauRow("R", ("x1", "y1")),),
            (poly_eq("a1", "x1"), poly_eq("b1", "y1"), poly_eq("x1", "y1")),
        )
        phi2 = TableauQuery(
            ("a2", "b2"),
            (TableauRow("R", ("x2", "y2")),),
            (poly_eq("a2", "x2"), poly_eq("b2", "y2")),
        )
        db = GeneralizedDatabase(poly)
        r = db.create_relation("R", ("u", "v"))
        r.add_point([1, 1])
        r.add_point([1, 2])
        out1 = evaluate_tableau(phi1, db)
        out2 = evaluate_tableau(phi2, db)
        for point in ([1, 1], [1, 2], [2, 2]):
            values = [Fraction(v) for v in point]
            if out1.contains_values(values):
                assert out2.contains_values(values)


class TestTheorem28:
    def test_containment_holds_but_no_homomorphism(self):
        phi1, phi2, witness1, witness2 = semiinterval_counterexample()
        # containment phi1 subseteq phi2 on both witness databases
        for db in (witness1, witness2):
            out1 = rule_output(phi1, db)
            out2 = rule_output(phi2, db)
            assert out1.contains_values([Fraction(7)]) <= out2.contains_values(
                [Fraction(7)]
            )
        # phi1 yields R''(7) on both witnesses
        assert rule_output(phi1, witness1).contains_values([Fraction(7)])
        assert rule_output(phi1, witness2).contains_values([Fraction(7)])
        # but each single symbol mapping fails on one of the witnesses:
        # h1 maps (v,w) -> (x,y): on witness1 requires R(1,3) with 3 > 4 - fails
        # h2 maps (v,w) -> (y,z): on witness2 requires R(5,9) with 5 < 4 - fails
        # we verify by checking which single R-row satisfies phi2's constraints
        def row_satisfies(db, row):
            a, b = row
            return a < 4 and b > 4

        w1_rows = [(1, 3), (3, 5)]
        w2_rows = [(1, 5), (5, 9)]
        # h1 image on witness1 is the row bound to (x, y) = (1, 3): fails
        assert not row_satisfies(witness1, (1, 3))
        # h2 image on witness2 is the row bound to (y, z) = (5, 9): fails
        assert not row_satisfies(witness2, (5, 9))
        # yet in each database *some* row works (different ones!)
        assert any(row_satisfies(witness1, r) for r in w1_rows)
        assert any(row_satisfies(witness2, r) for r in w2_rows)
