"""Tests for the Theorem 2.7 QBF reduction."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.tableaux.reductions import (
    BNode,
    BVarRef,
    chi_constraints,
    eval_bformula,
    qbf_ae_truth,
    qbf_to_tableaux,
    tableau_output_01,
)


def x(i, negated=False):
    return BVarRef("x", i, negated)


def y(j, negated=False):
    return BVarRef("y", j, negated)


class TestChiGadget:
    """The chi construction: F_k true iff s_k = 0 (the paper's induction)."""

    @pytest.mark.parametrize(
        "formula,n_x,n_y",
        [
            (x(0), 1, 0),
            (x(0, negated=True), 1, 0),
            (BNode("and", x(0), y(0)), 1, 1),
            (BNode("or", x(0), y(0)), 1, 1),
            (BNode("or", BNode("and", x(0), y(0, True)), x(1, True)), 2, 1),
        ],
    )
    def test_s_zero_iff_true(self, formula, n_x, n_y):
        constraints, _ = chi_constraints(formula, n_x, n_y)
        top_constraint = constraints[-1]  # s_top = 0
        for xs in itertools.product([False, True], repeat=n_x):
            for ys in itertools.product([False, True], repeat=n_y):
                assignment = {f"x{i}": int(v) for i, v in enumerate(xs)}
                assignment.update({f"y{j}": int(v) for j, v in enumerate(ys)})
                # solve the triangular s-system
                solvable = _propagate(constraints[:-1], assignment)
                assert solvable is not None
                truth = eval_bformula(formula, xs, ys)
                top_value = top_constraint.poly.evaluate(solvable)
                assert (top_value == 0) == truth


def _propagate(constraints, assignment):
    values = dict(assignment)
    for atom in constraints:
        unknowns = [v for v in atom.poly.variables() if v not in values]
        if len(unknowns) != 1:
            if unknowns:
                return None
            if atom.poly.evaluate(values) != 0:
                return None
            continue
        (unknown,) = unknowns
        coeffs = atom.poly.coefficients_in(unknown)
        known = coeffs[0].evaluate(values)
        lead = coeffs[1].constant_value()
        values[unknown] = -known / lead
    return values


class TestReduction:
    CASES = [
        # (formula, n_x, n_y, expected truth of forall x exists y psi)
        (BNode("or", x(0), x(0, True)), 1, 0, True),  # tautology
        (x(0), 1, 0, False),  # fails at x0 = false
        (BNode("or", x(0), y(0)), 1, 1, True),  # choose y0 = true
        (BNode("and", y(0), y(0, True)), 0, 1, False),  # contradiction
        (
            # forall x0 exists y0: (x0 and y0) or (not x0 and not y0)
            BNode(
                "or",
                BNode("and", x(0), y(0)),
                BNode("and", x(0, True), y(0, True)),
            ),
            1,
            1,
            True,
        ),
        (
            # forall x0, x1 exists y0: (x0 or y0) and (x1 or not y0)
            BNode(
                "and",
                BNode("or", x(0), y(0)),
                BNode("or", x(1), y(0, True)),
            ),
            2,
            1,
            False,  # fails at x0 = x1 = false
        ),
    ]

    @pytest.mark.parametrize("formula,n_x,n_y,expected", CASES)
    def test_brute_force_qbf(self, formula, n_x, n_y, expected):
        assert qbf_ae_truth(formula, n_x, n_y) == expected

    @pytest.mark.parametrize("formula,n_x,n_y,expected", CASES)
    def test_containment_iff_qbf(self, formula, n_x, n_y, expected):
        phi1, phi2 = qbf_to_tableaux(formula, n_x, n_y)
        out1 = tableau_output_01(phi1, n_x)
        out2 = tableau_output_01(phi2, n_x)
        # phi1's output is all 0/1 vectors
        assert out1 == set(itertools.product([0, 1], repeat=n_x))
        # containment of constraint-only queries is output inclusion
        contained = out1 <= out2
        assert contained == expected, (out1, out2)


@st.composite
def random_bformula(draw, n_x=2, n_y=1):
    depth = draw(st.integers(0, 3))

    def build(d):
        if d == 0 or draw(st.booleans()) and d < 2:
            kind = draw(st.sampled_from(["x"] * n_x + ["y"] * n_y))
            index = draw(
                st.integers(0, (n_x if kind == "x" else n_y) - 1)
            )
            return BVarRef(kind, index, draw(st.booleans()))
        op = draw(st.sampled_from(["and", "or"]))
        return BNode(op, build(d - 1), build(d - 1))

    return build(depth)


class TestReductionProperty:
    @settings(max_examples=25, deadline=None)
    @given(random_bformula())
    def test_reduction_agrees_with_brute_force(self, formula):
        n_x, n_y = 2, 1
        expected = qbf_ae_truth(formula, n_x, n_y)
        phi1, phi2 = qbf_to_tableaux(formula, n_x, n_y)
        out1 = tableau_output_01(phi1, n_x)
        out2 = tableau_output_01(phi2, n_x)
        assert (out1 <= out2) == expected
