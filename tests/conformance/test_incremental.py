"""Conformance-harness coverage for the ``incremental`` strategies.

Checks four things: the strategy registry offers ``incremental`` and
``incremental_chaos`` for every datalog spec; the seeded update-sequence
generator is deterministic, net-effect-preserving, and shrinks with the
spec; sampled datalog specs across all four theories replay cleanly
through ``run_case`` (zero discrepancies); and a stepwise divergence
raised by a strategy surfaces as a first-class discrepancy of oracle
``"incremental"``.  A seeded chaos variant (nightly, ``-m chaos``) runs
the full differential loop with fault injection armed.
"""

import pytest

from repro.conformance.generators import case_seed, generate_case
from repro.conformance.runner import run_case, run_conformance
from repro.conformance.strategies import Strategy, strategies_for
from repro.conformance.updates import IncrementalMismatchError, update_sequence
from repro.runtime.chaos import ChaosPolicy

THEORIES = ("dense_order", "equality", "boolean", "real_poly")


def _datalog_specs(theory, count, base_seed=0, probes=200):
    specs = []
    for probe in range(probes):
        spec = generate_case(theory, case_seed(base_seed, theory, probe))
        if spec.kind == "datalog":
            specs.append(spec)
        if len(specs) >= count:
            break
    return specs


class TestRegistry:
    @pytest.mark.parametrize("theory", THEORIES)
    def test_datalog_specs_get_both_incremental_routes(self, theory):
        for spec in _datalog_specs(theory, 3):
            names = [route.name for route in strategies_for(spec)]
            assert "incremental" in names
            assert "incremental_chaos" in names
            # differential baseline: never the reference route
            assert names[0] not in ("incremental", "incremental_chaos")

    def test_non_datalog_specs_are_skipped(self):
        for probe in range(200):
            spec = generate_case("dense_order", probe)
            if spec.kind != "datalog":
                names = [route.name for route in strategies_for(spec)]
                assert "incremental" not in names
                return
        pytest.skip("no non-datalog spec in probe range")


class TestUpdateSequence:
    def _spec(self):
        (spec,) = _datalog_specs("dense_order", 1)
        return spec

    def test_deterministic(self):
        spec = self._spec()
        assert update_sequence(spec, churn=2) == update_sequence(spec, churn=2)

    def test_net_effect_is_exactly_the_spec_edb(self):
        # replay with set semantics (retract of an absent tuple is a no-op,
        # like the view's): the final state must be the spec's full EDB
        spec = self._spec()
        expected = {
            (name, index)
            for name, _variables, tuples in spec.relations
            for index in range(len(tuples))
        }
        for churn in (0, 1, 3):
            present = set()
            for op, name, index in update_sequence(spec, churn=churn):
                if op == "insert":
                    present.add((name, index))
                else:
                    present.discard((name, index))
            assert present == expected, f"churn={churn}"

    def test_churn_adds_retracts_and_noops(self):
        spec = self._spec()
        base = update_sequence(spec, churn=0)
        assert all(op == "insert" for op, _n, _i in base)
        churned = update_sequence(spec, churn=2)
        retracts = [step for step in churned if step[0] == "retract"]
        assert retracts  # at least the woven no-op retract
        assert len(churned) > len(base)

    def test_retract_only_targets_spec_tuples(self):
        spec = self._spec()
        valid = {
            (name, index)
            for name, _variables, tuples in spec.relations
            for index in range(len(tuples))
        }
        for _op, name, index in update_sequence(spec, churn=3):
            assert (name, index) in valid

    def test_shrunk_spec_yields_shorter_sequence(self):
        spec = self._spec()
        total = sum(len(tuples) for _n, _v, tuples in spec.relations)
        if total < 2:
            pytest.skip("spec too small to shrink a tuple away")
        from dataclasses import replace

        name, variables, tuples = next(r for r in spec.relations if r[2])
        shrunk_relations = tuple(
            (name, variables, tuples[:-1]) if r[0] == name else r
            for r in spec.relations
        )
        shrunk = replace(spec, relations=shrunk_relations)
        assert len(update_sequence(shrunk, churn=0)) < len(
            update_sequence(spec, churn=0)
        )


class TestDifferential:
    @pytest.mark.parametrize("theory", THEORIES)
    def test_sampled_specs_have_no_discrepancies(self, theory):
        for spec in _datalog_specs(theory, 2):
            found = run_case(spec)
            assert found is None, (
                f"discrepancy on {theory} seed={spec.seed}: {found}"
            )

    def test_stepwise_mismatch_maps_to_incremental_oracle(self, monkeypatch):
        import repro.conformance.runner as runner_module

        (spec,) = _datalog_specs("dense_order", 1)
        real_routes = strategies_for(spec)

        def _explode(_spec):
            raise IncrementalMismatchError(
                3, ("retract", "R0", 1), spec.target
            )

        def _fake_strategies(s):
            return [real_routes[0], Strategy("incremental", _explode)]

        monkeypatch.setattr(
            runner_module, "strategies_for", _fake_strategies
        )
        found = runner_module.run_case(spec)
        assert found is not None
        assert found.oracle == "incremental"
        assert found.right_name == "incremental"
        assert "step 3" in found.detail


@pytest.mark.chaos
class TestIncrementalChaos:
    """Seeded fault injection through the full differential loop.

    The incremental strategies run inside the armed chaos scope like every
    other route: injected faults may degrade a run (tallied, skipped) but
    must never produce a maintained state that differs from scratch.
    """

    @pytest.mark.parametrize("theory", THEORIES)
    def test_chaos_run_is_clean(self, theory):
        report = run_conformance(
            theory,
            cases=6,
            seed=11,
            chaos=ChaosPolicy(seed=7, p=0.05),
        )
        assert report.ok, report.failures
        assert report.strategy_runs.get("incremental", 0) >= 0
