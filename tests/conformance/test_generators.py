"""Generator determinism, spec round-trips, and seed plumbing."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.conformance.generators import (
    DEEP,
    SEED_ENV_VAR,
    SMOKE,
    THEORY_ALIASES,
    THEORY_NAMES,
    GeneratorConfig,
    case_seed,
    generate_case,
    resolve_seed,
)
from repro.conformance.spec import CaseSpec, build_case


@pytest.mark.parametrize("theory", THEORY_NAMES)
@given(seed=st.integers(0, 2**31 - 1))
def test_same_seed_same_spec(theory, seed):
    assert generate_case(theory, seed) == generate_case(theory, seed)


@pytest.mark.parametrize("theory", THEORY_NAMES)
@given(seed=st.integers(0, 2**31 - 1))
def test_spec_json_round_trip(theory, seed):
    spec = generate_case(theory, seed)
    wire = json.dumps(spec.as_dict())
    assert CaseSpec.from_dict(json.loads(wire)) == spec


@pytest.mark.parametrize("theory", THEORY_NAMES)
@given(seed=st.integers(0, 2**31 - 1))
def test_generated_specs_build(theory, seed):
    """Every generated spec instantiates: decodable atoms, well-formed rules,
    and (for calculus/qe kinds) a query whose free variables are the output."""
    from repro.logic.syntax import free_variables

    spec = generate_case(theory, seed)
    case = build_case(spec)
    assert case.output == spec.output
    if spec.kind in ("calculus", "qe"):
        assert set(free_variables(case.query)) == set(spec.output), spec
    else:
        assert spec.target in {rule.head.name for rule in case.rules}


@pytest.mark.parametrize("theory", THEORY_NAMES)
def test_deep_profile_same_grammar(theory):
    """The deep preset only changes sizes, not the grammar: specs still build."""
    for index in range(10):
        build_case(generate_case(theory, case_seed(9, theory, index), DEEP))


def test_case_seed_is_process_stable():
    """Derived seeds must not depend on randomized string hashing."""
    assert case_seed(0, "dense_order", 0) == 675426014
    assert case_seed(0, "dense_order", 1) != case_seed(0, "dense_order", 0)
    assert case_seed(0, "dense_order", 5) != case_seed(1, "dense_order", 5)


def test_theory_aliases_resolve():
    for alias, name in THEORY_ALIASES.items():
        assert name in THEORY_NAMES
        assert generate_case(alias, 3) == generate_case(name, 3)
    with pytest.raises(ValueError):
        generate_case("nonsense", 0)


def test_resolve_seed_honors_env(monkeypatch):
    monkeypatch.delenv(SEED_ENV_VAR, raising=False)
    assert resolve_seed(17) == 17
    monkeypatch.setenv(SEED_ENV_VAR, "12345")
    assert resolve_seed(17) == 12345
    monkeypatch.setenv(SEED_ENV_VAR, "0x10")
    assert resolve_seed() == 16
    monkeypatch.setenv(SEED_ENV_VAR, "not-a-seed")
    with pytest.raises(ValueError):
        resolve_seed()


def test_size_presets():
    assert SMOKE == GeneratorConfig.smoke()
    assert DEEP.max_tuples > SMOKE.max_tuples
    assert DEEP.max_constant > SMOKE.max_constant
