"""The differential property: every strategy agrees on every generated case.

This is the tentpole assertion of the harness: for random generalized
databases and queries in each of the four theories, the calculus evaluator,
the generalized relational algebra, the paper-verbatim EVAL-phi procedures,
every ``EngineOptions`` ablation of the Datalog engine, the Boole's-lemma
engine, and both QE backends denote the same point set.
"""

import pytest
from hypothesis import given, strategies as st

from repro.conformance.generators import (
    THEORY_NAMES,
    case_seed,
    generate_case,
    resolve_seed,
)
from repro.conformance.runner import run_case, run_conformance
from repro.conformance.strategies import ABLATION_GRID, strategies_for


@pytest.mark.parametrize("theory", THEORY_NAMES)
@given(index=st.integers(0, 2**20))
def test_all_strategies_agree(theory, index):
    seed = case_seed(resolve_seed(0), theory, index)
    spec = generate_case(theory, seed)
    found = run_case(spec)
    assert found is None, (
        f"strategies disagree on {theory} case seed={seed} "
        f"(replay: python -m repro conformance --theory {theory} "
        f"--case-seed {seed}): {found.describe()}"
    )


def test_every_ablation_config_is_exercised():
    """Acceptance criterion: each EngineOptions ablation runs in some pair."""
    report = run_conformance("dense_order", cases=20, seed=resolve_seed(0))
    exercised, total = report.options_coverage()
    # coverage keys by as_dict, under which parallel_forced and
    # compiled_forced (worker-count overrides, deliberately outside as_dict)
    # collapse into all_on, compiled_off into no_compile_rules, and
    # semantic_off (the acceptance-criterion alias) into no_optimize_semantic
    distinct = len({frozenset(o.as_dict().items()) for _, o in ABLATION_GRID})
    assert (exercised, total) == (distinct, distinct)
    assert distinct == len(ABLATION_GRID) - 4
    assert report.ok, [f.discrepancy.describe() for f in report.failures]


def test_ablation_grid_shape():
    labels = [label for label, _ in ABLATION_GRID]
    assert labels[:2] == ["all_on", "all_off"]
    # all_on + all_off + one per as_dict flag + serial_scan + parallel_forced
    # + compiled_off + compiled_forced + semantic_off
    flags = len(ABLATION_GRID[0][1].as_dict())
    assert len(labels) == flags + 7
    # every grid entry is a distinct configuration (parallel_forced and
    # compiled_forced differ only in worker count, which as_dict omits),
    # except the stable public aliases of auto-generated entries --
    # compiled_off for no_compile_rules and semantic_off for
    # no_optimize_semantic -- so nightly tooling can reference each
    # differential pair by name regardless of flag spelling
    distinct = {
        (frozenset(o.as_dict().items()), o.parallel_workers)
        for _, o in ABLATION_GRID
    }
    assert len(distinct) == len(labels) - 2
    assert "compiled_off" in labels and "no_compile_rules" in labels
    assert "semantic_off" in labels and "no_optimize_semantic" in labels


@pytest.mark.parametrize(
    "theory, expected",
    [
        ("dense_order", {"calculus", "algebra", "rconfig"}),
        ("equality", {"calculus", "algebra", "econfig"}),
        ("boolean", {"calculus", "algebra"}),
    ],
)
def test_calculus_registry_contents(theory, expected):
    for index in range(200):
        spec = generate_case(theory, case_seed(3, theory, index))
        if spec.kind != "calculus":
            continue
        names = {route.name for route in strategies_for(spec)}
        assert names == expected
        assert strategies_for(spec)[0].name == "calculus"  # reference first
        return
    pytest.fail("no calculus case generated in 200 seeds")


def test_datalog_registry_contains_all_ablations_and_naive():
    for index in range(200):
        spec = generate_case("dense_order", case_seed(3, "dense_order", index))
        if spec.kind != "datalog":
            continue
        names = {route.name for route in strategies_for(spec)}
        assert "datalog[all_on]" in names
        assert "datalog[all_off]" in names
        assert "datalog[naive]" in names
        # one no_* entry per as_dict flag
        flags = len(ABLATION_GRID[0][1].as_dict())
        assert sum(1 for n in names if n.startswith("datalog[no_")) == flags
        assert "datalog[serial_scan]" in names
        assert "datalog[parallel_forced]" in names
        assert "datalog[compiled_off]" in names
        assert "datalog[compiled_forced]" in names
        return
    pytest.fail("no datalog case generated in 200 seeds")


def test_boolean_datalog_includes_boole_lemma():
    for index in range(200):
        spec = generate_case("boolean", case_seed(3, "boolean", index))
        if spec.kind != "datalog":
            continue
        names = {route.name for route in strategies_for(spec)}
        assert "boole_lemma" in names
        return
    pytest.fail("no boolean datalog case generated in 200 seeds")
