"""Conformance-suite plumbing.

Hypothesis profiles (``ci``/``deep``) and the failure seed-report hook
live in the repo-level ``tests/conftest.py`` so the cross-validation
suites share them; nothing conformance-specific is needed here yet.
"""
