"""Fourier-Motzkin and virtual substitution agree on random linear blocks.

The Giusti-Heintz-Kuijpers observation motivating this harness: QE-backend
choice is exactly where geometric query evaluators diverge in practice.
Both backends eliminate the same existential block of linear sign
conditions; the oracle then demands identical point sets (and both must
also match the theory's own elimination ladder via the full registry).
"""

import pytest
from hypothesis import assume, given, strategies as st

from repro.conformance.generators import generate_case
from repro.conformance.oracles import compare_relations
from repro.conformance.runner import run_case
from repro.conformance.strategies import strategies_for


def _route(spec, name):
    return next(r for r in strategies_for(spec) if r.name == name)


@given(seed=st.integers(0, 2**31 - 1))
def test_fm_and_vs_agree(seed):
    spec = generate_case("real_poly", seed)
    assume(spec.kind == "qe")
    fm = _route(spec, "qe:fourier_motzkin").run(spec)
    vs = _route(spec, "qe:virtual_substitution").run(spec)
    found = compare_relations(
        fm, vs, "qe:fourier_motzkin", "qe:virtual_substitution", "real_poly"
    )
    assert found is None, f"seed={seed}: {found.describe()}"


@given(seed=st.integers(0, 2**31 - 1))
def test_qe_backends_match_theory_ladder(seed):
    """The full registry run: calculus reference vs both backends."""
    spec = generate_case("real_poly", seed)
    assume(spec.kind == "qe")
    found = run_case(spec)
    assert found is None, f"seed={seed}: {found.describe()}"


def test_qe_registry_is_the_backend_pair():
    for index in range(300):
        spec = generate_case("real_poly", index)
        if spec.kind != "qe":
            continue
        names = [r.name for r in strategies_for(spec)]
        assert names == [
            "qe:calculus",
            "qe:fourier_motzkin",
            "qe:virtual_substitution",
        ]
        return
    pytest.fail("no qe case generated in 300 seeds")
