"""Magic strategies in the conformance registry, plus the query property.

``magic`` derives bound queries from every generated datalog case and
raises unless :meth:`repro.core.query.Engine.query` agrees with the
full-fixpoint-then-filter oracle; ``magic_chaos`` does the same with the
containment-based result-reuse cache kept warm across the queries.  The
hypothesis property test widens the sweep over the conformance generators
(every theory, every adornment the strategy derives, negation programs
falling back); the chaos-marked sweep runs in the nightly job.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.conformance.generators import case_seed, generate_case
from repro.conformance.strategies import MagicMismatchError, strategies_for

THEORIES = ("dense_order", "equality", "boolean", "real_poly")


def _datalog_specs(theory, count, base_seed=0):
    out = []
    for index in range(200):
        spec = generate_case(theory, case_seed(base_seed, theory, index))
        if spec.kind == "datalog":
            out.append(spec)
            if len(out) >= count:
                break
    return out


def test_registry_contains_magic_strategies():
    (spec,) = _datalog_specs("dense_order", 1)
    names = {route.name for route in strategies_for(spec)}
    assert "magic" in names
    assert "magic_chaos" in names


def test_magic_absent_outside_datalog():
    for index in range(200):
        spec = generate_case("dense_order", case_seed(0, "dense_order", index))
        if spec.kind != "datalog":
            names = {route.name for route in strategies_for(spec)}
            assert "magic" not in names
            return
    pytest.fail("no non-datalog case generated in 200 seeds")


@pytest.mark.parametrize("theory", THEORIES)
def test_magic_matches_filtered_fixpoint_over_corpus(theory):
    # MagicMismatchError inside run() is the failure mode: any divergence
    # between Engine.query and the filtered full fixpoint raises
    for spec in _datalog_specs(theory, 2):
        route = next(r for r in strategies_for(spec) if r.name == "magic")
        route.run(spec)


@pytest.mark.parametrize("theory", THEORIES)
@settings(
    max_examples=8, deadline=None, suppress_health_check=list(HealthCheck)
)
@given(index=st.integers(min_value=0, max_value=400))
def test_property_query_equals_full_then_filter(theory, index):
    """The acceptance property, over the conformance generators.

    For every generated datalog case the ``magic`` strategy checks each of
    its derived bound queries (constant / all-bound / repeated-variable /
    interval adornments, negation programs included -- those exercise the
    tagged fallback) against full-fixpoint-then-filter and raises
    :class:`MagicMismatchError` on the first divergence.
    """
    spec = generate_case(theory, case_seed(11, theory, index))
    if spec.kind != "datalog":
        return
    route = next(r for r in strategies_for(spec) if r.name == "magic")
    route.run(spec)


@settings(max_examples=10, deadline=None)
@given(
    edges=st.integers(min_value=1, max_value=5),
    bound=st.integers(min_value=0, max_value=6),
)
def test_negation_fallback_equals_oracle(edges, bound):
    """Queries landing in a negation stratum degrade to tagged, correct
    full evaluation (never wrong answers)."""
    from dataclasses import replace

    from repro.constraints.dense_order import DenseOrderTheory
    from repro.core.datalog import EngineOptions
    from repro.core.generalized import GeneralizedDatabase
    from repro.core.query import Engine
    from repro.logic.parser import parse_rules

    order = DenseOrderTheory()
    rules = parse_rules(
        """
        T(x, y) :- E(x, y).
        T(x, z) :- E(x, y), T(y, z).
        U(x, y) :- V(x), V(y), not T(x, y).
        """,
        theory=order,
    )
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(edges):
        edge.add_point([i, i + 1])
    vertex = db.create_relation("V", ("x",))
    for i in range(edges + 2):
        vertex.add_point([i])
    goal = f"U({bound}, y)"
    magic = Engine(rules, order, database=db).query(goal)
    assert magic.full_fallback
    assert "U" in magic.fallback_predicates
    oracle = Engine(
        rules,
        order,
        options=replace(EngineOptions(), magic=False),
        database=db,
    ).query(goal)
    assert frozenset(magic.relation.keys()) == frozenset(
        oracle.relation.keys()
    )


@pytest.mark.chaos
@pytest.mark.parametrize("theory", THEORIES)
def test_magic_chaos_reuse_cache_over_corpus(theory):
    for spec in _datalog_specs(theory, 4, base_seed=7):
        route = next(
            r for r in strategies_for(spec) if r.name == "magic_chaos"
        )
        route.run(spec)


def test_mismatch_error_is_exported():
    assert issubclass(MagicMismatchError, Exception)
