"""Replay every corpus artifact: once-found discrepancies must stay fixed."""

from pathlib import Path

import pytest

from repro.conformance.runner import replay_artifact

CORPUS = Path(__file__).parent / "corpus"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


@pytest.mark.parametrize(
    "artifact", ARTIFACTS, ids=[p.name for p in ARTIFACTS]
)
def test_corpus_artifact_stays_fixed(artifact):
    found = replay_artifact(artifact)
    assert found is None, (
        f"regression: corpus case {artifact.name} diverges again: "
        f"{found.describe()}"
    )


def test_corpus_directory_exists():
    """The corpus directory (with its README) must stay in the tree even
    while empty, so artifacts written by a failing run land in version
    control rather than a scratch path."""
    assert CORPUS.is_dir()
    assert (CORPUS / "README.md").exists()
