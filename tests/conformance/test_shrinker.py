"""Shrinker and runner mechanics on synthetic predicates."""

import json

from repro.conformance.generators import case_seed, generate_case
from repro.conformance.runner import (
    replay_artifact,
    run_case,
    run_conformance,
)
from repro.conformance.shrinker import shrink


def _find_spec(theory, kind, base=3, tries=400):
    for index in range(tries):
        spec = generate_case(theory, case_seed(base, theory, index))
        if spec.kind == kind:
            return spec
    raise AssertionError(f"no {kind} case for {theory} in {tries} seeds")


def test_shrink_drops_irrelevant_relation_tuples():
    spec = _find_spec("dense_order", "calculus")
    total_tuples = sum(len(rel[2]) for rel in spec.relations)
    # Predicate only cares that the spec still names its relations, so the
    # minimizer should strip every database tuple (and most of the query).
    names = {rel[0] for rel in spec.relations}

    def predicate(candidate):
        return {rel[0] for rel in candidate.relations} == names

    small = shrink(spec, predicate)
    assert predicate(small)
    assert sum(len(rel[2]) for rel in small.relations) == 0
    assert total_tuples >= 0  # original untouched
    assert sum(len(rel[2]) for rel in spec.relations) == total_tuples


def test_shrink_result_still_satisfies_predicate_on_datalog():
    spec = _find_spec("dense_order", "datalog")

    def predicate(candidate):
        return len(candidate.rules) >= 1

    small = shrink(spec, predicate)
    assert len(small.rules) >= 1
    assert len(small.rules) <= len(spec.rules)


def test_shrink_treats_predicate_exceptions_as_rejection():
    spec = _find_spec("equality", "calculus")

    def predicate(candidate):
        if sum(len(rel[2]) for rel in candidate.relations) < 1:
            raise RuntimeError("boom")
        return True

    small = shrink(spec, predicate)
    assert sum(len(rel[2]) for rel in small.relations) >= 1


def test_run_conformance_writes_no_artifacts_when_clean(tmp_path):
    report = run_conformance(
        "equality", cases=10, seed=0, corpus_dir=tmp_path
    )
    assert report.ok
    assert list(tmp_path.glob("*.json")) == []
    assert report.cases == 10
    assert any("discrepancies: 0" in line for line in report.summary_lines())


def test_artifact_round_trip(tmp_path):
    """A hand-written artifact replays through the same run_case path."""
    spec = _find_spec("dense_order", "calculus")
    path = tmp_path / "case.json"
    path.write_text(
        json.dumps({"spec": spec.as_dict(), "discrepancy": None})
    )
    assert replay_artifact(path) == run_case(spec) == None  # noqa: E711
