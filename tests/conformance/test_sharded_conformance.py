"""Sharded strategies in the conformance registry, replayed over the corpus.

``sharded`` re-evaluates every datalog case through the multi-process
executor and raises unless the fixpoint is byte-identical to the serial
engine; ``sharded_chaos`` does the same while killing workers mid-round.
The fast replays here run in the default suite; the wider chaos sweep is
marked ``chaos`` for the nightly job.
"""

import pytest

from repro.conformance.generators import case_seed, generate_case
from repro.conformance.strategies import strategies_for

THEORIES = ("dense_order", "equality", "boolean", "real_poly")


def _datalog_specs(theory, count, base_seed=0):
    out = []
    for index in range(200):
        spec = generate_case(theory, case_seed(base_seed, theory, index))
        if spec.kind == "datalog":
            out.append(spec)
            if len(out) >= count:
                break
    return out


def test_registry_contains_sharded_strategies():
    (spec,) = _datalog_specs("dense_order", 1)
    names = {route.name for route in strategies_for(spec)}
    assert "sharded" in names
    assert "sharded_chaos" in names


def test_sharded_absent_outside_datalog():
    for index in range(200):
        spec = generate_case("dense_order", case_seed(0, "dense_order", index))
        if spec.kind != "datalog":
            names = {route.name for route in strategies_for(spec)}
            assert "sharded" not in names
            return
    pytest.fail("no non-datalog case generated in 200 seeds")


@pytest.mark.parametrize("theory", THEORIES)
def test_sharded_byte_identical_over_corpus(theory):
    # ShardedDivergenceError inside run() is the failure mode: any
    # insertion-order difference against the serial engine raises
    for spec in _datalog_specs(theory, 2):
        route = next(r for r in strategies_for(spec) if r.name == "sharded")
        route.run(spec)


@pytest.mark.chaos
@pytest.mark.parametrize("theory", THEORIES)
def test_sharded_chaos_byte_identical_over_corpus(theory):
    for spec in _datalog_specs(theory, 4, base_seed=7):
        route = next(
            r for r in strategies_for(spec) if r.name == "sharded_chaos"
        )
        route.run(spec)
