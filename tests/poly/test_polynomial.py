"""Tests for exact multivariate polynomial arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.polynomial import Polynomial, poly_const, poly_var

x = poly_var("x")
y = poly_var("y")
z = poly_var("z")


class TestConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.constant(0).is_zero()

    def test_constant_value(self):
        assert poly_const(Fraction(3, 2)).constant_value() == Fraction(3, 2)

    def test_variables(self):
        assert (x * y + z).variables() == {"x", "y", "z"}

    def test_zero_coefficients_dropped(self):
        assert (x - x).is_zero()
        assert (x * 0).is_zero()


class TestArithmetic:
    def test_ring_axioms_spot(self):
        p = x * x + 2 * y - 3
        q = y * y - x
        assert p + q == q + p
        assert p * q == q * p
        assert p * (q + 1) == p * q + p

    def test_pow(self):
        assert (x + 1) ** 2 == x * x + 2 * x + 1
        assert (x + y) ** 0 == Polynomial.one()

    def test_negative_pow_rejected(self):
        with pytest.raises(ValueError):
            (x + 1) ** -1

    def test_scalar_division(self):
        assert (2 * x) / 2 == x

    def test_scalar_coercion(self):
        assert 1 + x == x + 1
        assert 2 - x == -(x - 2)
        assert 3 * x == x * 3


class TestDegrees:
    def test_total_degree(self):
        assert (x * x * y + y).total_degree() == 3
        assert Polynomial.zero().total_degree() == -1
        assert poly_const(5).total_degree() == 0

    def test_degree_in(self):
        p = x * x * y + y * y * y
        assert p.degree_in("x") == 2
        assert p.degree_in("y") == 3
        assert p.degree_in("z") == 0


class TestCoefficients:
    def test_roundtrip(self):
        p = x * x * y - 2 * x + y + 7
        coeffs = p.coefficients_in("x")
        assert len(coeffs) == 3
        assert Polynomial.from_coefficients(coeffs, "x") == p

    def test_leading_coefficient(self):
        p = (y + 1) * x * x + x
        assert p.leading_coefficient_in("x") == y + 1

    def test_as_linear(self):
        p = 2 * x - 3 * y + 5
        coeffs, constant = p.as_linear()
        assert coeffs == {"x": Fraction(2), "y": Fraction(-3)}
        assert constant == 5

    def test_as_linear_rejects_quadratic(self):
        assert (x * x).as_linear() is None
        assert (x * y).as_linear() is None

    def test_from_linear(self):
        assert Polynomial.from_linear({"x": 2, "y": -1}, 4) == 2 * x - y + 4


class TestEvaluation:
    def test_evaluate(self):
        p = x * x + y
        assert p.evaluate({"x": 2, "y": 1}) == 5
        assert p.evaluate({"x": Fraction(1, 2), "y": 0}) == Fraction(1, 4)

    def test_substitute(self):
        p = x * x + y
        q = p.substitute({"x": y + 1})
        assert q == (y + 1) * (y + 1) + y

    def test_rename(self):
        assert (x * y).rename({"x": "u"}) == poly_var("u") * y

    def test_rename_merging(self):
        # renaming both variables to the same name merges exponents
        assert (x * y).rename({"x": "u", "y": "u"}) == poly_var("u") ** 2


class TestCalculus:
    def test_derivative(self):
        p = x * x * x + 2 * x * y
        assert p.derivative("x") == 3 * x * x + 2 * y
        assert p.derivative("y") == 2 * x
        assert p.derivative("z").is_zero()

    def test_primitive(self):
        p = 4 * x + 6 * y
        prim = p.primitive()
        assert prim == 2 * x + 3 * y
        assert (-p).primitive() == prim  # sign normalized

    def test_primitive_fractions(self):
        p = x / 2 + poly_const(Fraction(1, 3))
        prim = p.primitive()
        assert prim == 3 * x + 2


class TestExactDivision:
    def test_exact(self):
        p = (x + y) * (x - y)
        assert p.exact_div(x + y) == x - y

    def test_not_divisible(self):
        with pytest.raises(ValueError):
            (x + 1).exact_div(y)

    def test_constant_divisor(self):
        assert (2 * x).exact_div(poly_const(2)) == x

    def test_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            x.exact_div(Polynomial.zero())


@st.composite
def small_poly(draw):
    terms = {}
    for _ in range(draw(st.integers(0, 4))):
        ex = draw(st.integers(0, 2))
        ey = draw(st.integers(0, 2))
        coeff = draw(st.integers(-3, 3))
        mono = tuple(m for m in (("x", ex), ("y", ey)) if m[1])
        terms[mono] = terms.get(mono, 0) + coeff
    return Polynomial(terms)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(small_poly(), small_poly())
    def test_evaluation_homomorphism(self, p, q):
        point = {"x": Fraction(2, 3), "y": Fraction(-5, 7)}
        assert (p + q).evaluate(point) == p.evaluate(point) + q.evaluate(point)
        assert (p * q).evaluate(point) == p.evaluate(point) * q.evaluate(point)

    @settings(max_examples=100, deadline=None)
    @given(small_poly(), small_poly())
    def test_exact_div_inverts_mul(self, p, q):
        if q.is_zero():
            return
        assert (p * q).exact_div(q) == p

    @settings(max_examples=100, deadline=None)
    @given(small_poly())
    def test_hash_consistency(self, p):
        assert hash(p) == hash(Polynomial(p.terms))
