"""Tests for contents, primitive parts, bivariate GCDs and gcd-free bases."""


from hypothesis import given, settings, strategies as st

from repro.poly.bivargcd import (
    content_in,
    gcd_free_basis,
    gcd_in,
    primitive_part_in,
    pseudo_remainder,
    squarefree_in,
)
from repro.poly.polynomial import Polynomial, poly_var

x = poly_var("x")
y = poly_var("y")


class TestContent:
    def test_constant_content_is_unit(self):
        # over the field Q scalar contents are units, normalized to 1
        p = 2 * y * y + 4 * y + 6
        assert content_in(p, "y") == Polynomial.one()

    def test_polynomial_content(self):
        p = x * y + x  # = x (y + 1)
        assert content_in(p, "y") == x

    def test_primitive_part(self):
        p = x * y + x
        assert primitive_part_in(p, "y") == y + 1

    def test_zero(self):
        assert content_in(Polynomial.zero(), "y").is_zero()


class TestPseudoRemainder:
    def test_degree_drops(self):
        f = y**3 + x * y + 1
        g = x * y + 1
        remainder = pseudo_remainder(f, g, "y")
        assert remainder.degree_in("y") < g.degree_in("y")

    def test_exact_multiple(self):
        f = (y - x) * (y + x)
        remainder = pseudo_remainder(f, y - x, "y")
        assert remainder.is_zero()


class TestGcd:
    def test_common_factor(self):
        f = (y - x) * (y + 1)
        g = (y - x) * (y + 2)
        common = gcd_in(f, g, "y")
        # proportional to y - x
        assert common.degree_in("y") == 1
        assert common.exact_div(common.primitive()) is not None
        assert (y - x).primitive() == common or (x - y).primitive() == common

    def test_coprime(self):
        common = gcd_in(y - x, y + x + 1, "y")
        assert common.degree_in("y") == 0

    def test_with_content(self):
        f = x * (y - 1)
        g = x * (y + 1)
        common = gcd_in(f, g, "y")
        assert common == x  # gcd of contents

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2))
    def test_gcd_divides(self, a, b, c):
        f = (y - a * x) * (y + b)
        g = (y - a * x) * (y + c)
        common = gcd_in(f, g, "y")
        assert common.degree_in("y") >= 1  # shares y - a x
        f.exact_div(common)
        g.exact_div(common)  # no exception: divides both


class TestSquarefree:
    def test_removes_square(self):
        f = (y - x) * (y - x) * (y + 1)
        sf = squarefree_in(f, "y")
        assert sf.degree_in("y") == 2
        sf.exact_div((y - x).primitive())

    def test_already_squarefree(self):
        f = (y - x) * (y + 1)
        assert squarefree_in(f, "y").degree_in("y") == 2

    def test_pure_power(self):
        f = (y - 1) ** 3
        sf = squarefree_in(f, "y")
        assert sf == (y - 1) or sf == (1 - y).primitive()


class TestGcdFreeBasis:
    def test_splits_common_factor(self):
        f = (y - x) * (y + 1)
        g = (y - x) * (y + 2)
        basis = gcd_free_basis([f, g], "y")
        degrees = sorted(b.degree_in("y") for b in basis)
        assert degrees == [1, 1, 1]  # y-x, y+1, y+2
        # pairwise coprime
        for i, a in enumerate(basis):
            for b in basis[i + 1:]:
                assert gcd_in(a, b, "y").degree_in("y") == 0

    def test_squares_collapse(self):
        basis = gcd_free_basis([(y - x) ** 2], "y")
        assert len(basis) == 1
        assert basis[0].degree_in("y") == 1

    def test_roots_preserved(self):
        # every root of every input is a root of some basis element
        f = (y - 1) * (y - 2)
        g = (y - 2) * (y - 3)
        basis = gcd_free_basis([f, g], "y")
        for root in (1, 2, 3):
            assert any(
                b.evaluate({"y": root}) == 0 for b in basis
            ), root

    def test_constants_ignored(self):
        basis = gcd_free_basis([Polynomial.constant(5), x + 1], "y")
        assert basis == []
