"""Tests for exact real algebraic numbers, resultants, and number fields."""

from fractions import Fraction

import pytest

from repro.poly.algebraic import RealAlgebraic, sorted_roots_with_rationals
from repro.poly.intervals import RatInterval, eval_upoly_on_interval
from repro.poly.numberfield import NumberField, cauchy_bound_over_field
from repro.poly.polynomial import poly_var
from repro.poly.resultant import discriminant, resultant
from repro.poly.univariate import SturmContext, UPoly


def up(*coeffs):
    return UPoly.from_fractions(coeffs)


def sqrt2():
    return [r for r in RealAlgebraic.roots_of(up(-2, 0, 1)) if r.sign() > 0][0]


class TestIntervals:
    def test_arithmetic(self):
        a = RatInterval(Fraction(1), Fraction(2))
        b = RatInterval(Fraction(-1), Fraction(1))
        assert (a + b) == RatInterval(Fraction(0), Fraction(3))
        assert (a * b) == RatInterval(Fraction(-2), Fraction(2))
        assert (-a) == RatInterval(Fraction(-2), Fraction(-1))

    def test_sign(self):
        assert RatInterval(Fraction(1), Fraction(2)).sign() == 1
        assert RatInterval(Fraction(-2), Fraction(-1)).sign() == -1
        assert RatInterval(Fraction(-1), Fraction(1)).sign() is None
        assert RatInterval.point(0).sign() == 0

    def test_horner(self):
        box = RatInterval(Fraction(1), Fraction(2))
        result = eval_upoly_on_interval([Fraction(-2), Fraction(0), Fraction(1)], box)
        # x^2 - 2 on [1,2] is within [-1, 2]
        assert result.low <= -1 and result.high >= 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RatInterval(Fraction(2), Fraction(1))


class TestRealAlgebraic:
    def test_sqrt2_sign_and_value(self):
        alpha = sqrt2()
        assert alpha.sign() == 1
        assert alpha.compare_rational(1) == 1
        assert alpha.compare_rational(2) == -1
        assert abs(float(alpha.approximate()) - 2**0.5) < 1

    def test_rational_roots_exact(self):
        roots = RealAlgebraic.roots_of(up(-1, 0, 1))  # x^2 - 1
        values = sorted(r.approximate() for r in roots)
        assert len(roots) == 2

    def test_sign_of_other_polynomial(self):
        alpha = sqrt2()
        # x^2 - 2 vanishes at sqrt(2)
        assert alpha.sign_of(up(-2, 0, 1)) == 0
        # x - 1 is positive there
        assert alpha.sign_of(up(-1, 1)) == 1
        # x - 2 is negative there
        assert alpha.sign_of(up(-2, 1)) == -1

    def test_sign_of_multiple_of_defining(self):
        alpha = sqrt2()
        multiple = up(-2, 0, 1) * up(3, 1)
        assert alpha.sign_of(multiple) == 0

    def test_equality_same_root_different_polys(self):
        a = sqrt2()
        # root of (x^2-2)(x-5) in the same region
        b = [
            r
            for r in RealAlgebraic.roots_of(up(-2, 0, 1) * up(-5, 1))
            if r.compare_rational(0) > 0 and r.compare_rational(3) < 0
        ][0]
        assert a.equals(b)
        assert a.compare(b) == 0

    def test_comparison(self):
        a = sqrt2()
        b = RealAlgebraic.from_rational(Fraction(3, 2))
        assert a.compare(b) < 0  # sqrt(2) < 1.5
        c = [r for r in RealAlgebraic.roots_of(up(-3, 0, 1)) if r.sign() > 0][0]
        assert a.compare(c) < 0  # sqrt2 < sqrt3

    def test_sorted_merge_dedup(self):
        roots = RealAlgebraic.roots_of(up(-2, 0, 1))
        merged = sorted_roots_with_rationals(roots, [Fraction(0), Fraction(0)])
        assert len(merged) == 3  # -sqrt2, 0, sqrt2
        assert merged[1].is_rational and merged[1].rational_value() == 0


class TestResultant:
    x = poly_var("x")
    y = poly_var("y")

    def test_common_root_detection(self):
        # res_x(x - y, x - 1) = 1 - y (vanishes iff y = 1)
        f = self.x - self.y
        g = self.x - 1
        res = resultant(f, g, "x")
        assert res.evaluate({"y": 1}) == 0
        assert res.evaluate({"y": 2}) != 0

    def test_circle_line(self):
        # res_y(x^2 + y^2 - 1, y - x): vanishes where the line meets the circle
        f = self.x**2 + self.y**2 - 1
        g = self.y - self.x
        res = resultant(f, g, "y")
        # 2x^2 - 1 = 0 at x = +-1/sqrt(2)
        value = res.evaluate({"x": Fraction(1, 2)})
        assert value != 0
        assert res.evaluate({"x": 0}) != 0
        # the resultant is proportional to 2x^2 - 1
        ratio = res.exact_div(2 * self.x**2 - 1)
        assert ratio.is_constant()

    def test_discriminant_of_quadratic(self):
        # disc(ax^2 + bx + c) = b^2 - 4ac
        a, b, c = poly_var("a"), poly_var("b"), poly_var("c")
        p = a * self.x**2 + b * self.x + c
        disc = discriminant(p, "x")
        assert disc == b * b - 4 * a * c

    def test_resultant_multiplicative_in_roots(self):
        # res(x-1, g) = g(1) up to sign
        g = self.x**2 + 3
        res = resultant(self.x - 1, g, "x")
        assert abs(res.constant_value()) == 4

    def test_zero_resultant_for_shared_factor(self):
        f = (self.x - self.y) * (self.x + 1)
        g = (self.x - self.y) * (self.x + 2)
        assert resultant(f, g, "x").is_zero()


class TestNumberField:
    def test_basic_arithmetic(self):
        field = NumberField(sqrt2())
        a = field.alpha_elem()  # sqrt2
        two = field.mul(a, a)
        assert two == field.from_fraction(2)
        half = field.div(field.one(), a)  # 1/sqrt2
        assert field.mul(half, a) == field.one()
        assert field.sign(a) == 1
        assert field.sign(field.sub(a, field.from_fraction(2))) == -1

    def test_is_zero(self):
        field = NumberField(sqrt2())
        a = field.alpha_elem()
        expr = field.sub(field.mul(a, a), field.from_fraction(2))  # alpha^2 - 2
        assert field.is_zero(expr)
        assert not field.is_zero(a)

    def test_d5_split_on_reducible_defining(self):
        # defining polynomial (x^2 - 2)(x - 3), alpha = sqrt(2)
        poly = up(-2, 0, 1) * up(-3, 1)
        context = SturmContext(poly)
        root = [
            r
            for r in RealAlgebraic.roots_of(poly)
            if r.compare_rational(1) > 0 and r.compare_rational(2) < 0
        ][0]
        field = NumberField(root)
        a = field.alpha_elem()
        # (alpha - 3) is nonzero and invertible only after a D5 split
        shifted = field.sub(a, field.from_fraction(3))
        inverse = field.inverse(shifted)
        assert field.mul(inverse, shifted) == field.one()
        # the defining polynomial must have shrunk to the sqrt(2) factor
        assert field.defining.degree() == 2

    def test_sturm_over_number_field(self):
        # isolate roots of y^2 - alpha (alpha = sqrt2): roots +-2^(1/4)
        field = NumberField(sqrt2())
        poly = UPoly(
            [field.neg(field.alpha_elem()), field.zero(), field.one()], field
        )
        bound = cauchy_bound_over_field(poly, field)
        context = SturmContext(poly)
        roots = context.isolate_roots(bound=bound)
        assert len(roots) == 2
        quarter = 2 ** 0.25
        for root, expected in zip(roots, (-quarter, quarter)):
            refined = root
            for _ in range(30):
                refined = context.refine(refined)
            assert abs(float(refined.midpoint()) - expected) < 1e-6

    def test_abs_bounds(self):
        field = NumberField(sqrt2())
        a = field.alpha_elem()
        upper = field.abs_upper(a)
        lower = field.abs_lower_nonzero(a)
        assert float(lower) <= 2**0.5 <= float(upper)
        assert lower > 0
