"""Tests for univariate polynomials, Sturm sequences, and root isolation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.univariate import SturmContext, UPoly


def up(*coeffs):
    """Polynomial from low-to-high integer coefficients."""
    return UPoly.from_fractions(coeffs)


class TestArithmetic:
    def test_degree(self):
        assert up(1, 2, 3).degree() == 2
        assert up().degree() == -1
        assert up(0, 0, 0).degree() == -1

    def test_add_sub(self):
        assert (up(1, 2) + up(3, -2)).coeffs == [Fraction(4)]
        assert (up(1, 2) - up(1, 2)).is_zero()

    def test_mul(self):
        # (x+1)(x-1) = x^2 - 1
        product = up(1, 1) * up(-1, 1)
        assert product.coeffs == [Fraction(-1), Fraction(0), Fraction(1)]

    def test_divmod(self):
        # x^3 - 1 = (x - 1)(x^2 + x + 1)
        quotient, remainder = up(-1, 0, 0, 1).divmod(up(-1, 1))
        assert remainder.is_zero()
        assert quotient.coeffs == [Fraction(1), Fraction(1), Fraction(1)]

    def test_divmod_with_remainder(self):
        quotient, remainder = up(1, 0, 1).divmod(up(0, 1))  # (x^2+1) / x
        assert quotient.coeffs == [Fraction(0), Fraction(1)]
        assert remainder.coeffs == [Fraction(1)]

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            up(1).divmod(up())

    def test_gcd(self):
        # gcd((x-1)(x-2), (x-1)(x-3)) = x - 1 (monic)
        a = up(-1, 1) * up(-2, 1)
        b = up(-1, 1) * up(-3, 1)
        assert a.gcd(b).coeffs == [Fraction(-1), Fraction(1)]

    def test_derivative(self):
        assert up(5, 3, 1).derivative().coeffs == [Fraction(3), Fraction(2)]

    def test_squarefree(self):
        # (x-1)^2 (x+2) -> (x-1)(x+2)
        p = up(-1, 1) * up(-1, 1) * up(2, 1)
        sf = p.squarefree()
        expected = (up(-1, 1) * up(2, 1)).monic()
        assert sf.coeffs == expected.coeffs

    def test_eval(self):
        p = up(-2, 0, 1)  # x^2 - 2
        assert p.eval(2) == 2
        assert p.sign_at(1) == -1
        assert p.sign_at(2) == 1

    def test_sign_at_infinity(self):
        p = up(0, -1)  # -x
        assert p.sign_at_infinity(positive=True) == -1
        assert p.sign_at_infinity(positive=False) == 1


class TestSturm:
    def test_count_real_roots(self):
        # x^2 - 2 has two real roots
        assert SturmContext(up(-2, 0, 1)).count_real_roots() == 2
        # x^2 + 1 has none
        assert SturmContext(up(1, 0, 1)).count_real_roots() == 0

    def test_half_open_convention(self):
        context = SturmContext(up(0, 1))  # x
        assert context.count_roots_half_open(Fraction(-1), Fraction(0)) == 1
        assert context.count_roots_half_open(Fraction(0), Fraction(1)) == 0

    def test_count_open(self):
        context = SturmContext(up(0, 1))
        assert context.count_roots_open(Fraction(-1), Fraction(0)) == 0
        assert context.count_roots_open(Fraction(-1), Fraction(1)) == 1

    def test_multiple_roots_counted_once(self):
        # (x-1)^2: one distinct root
        p = up(-1, 1) * up(-1, 1)
        assert SturmContext(p).count_real_roots() == 1


class TestIsolation:
    def test_quadratic(self):
        roots = SturmContext(up(-2, 0, 1)).isolate_roots()  # +-sqrt(2)
        assert len(roots) == 2
        lo, hi = roots
        assert hi.low < Fraction(15, 10) < hi.high or hi.is_exact is False
        assert lo.high <= 0 <= hi.low or (lo.high < 0 < hi.low)

    def test_rational_roots_found_exactly_or_bracketed(self):
        # roots at 0, 1, 2
        p = up(0, 1) * up(-1, 1) * up(-2, 1)
        context = SturmContext(p)
        roots = context.isolate_roots()
        assert len(roots) == 3
        values = []
        for root in roots:
            interval = root
            for _ in range(30):
                interval = context.refine(interval)
            values.append(interval.midpoint())
        assert [round(float(v)) for v in values] == [0, 1, 2]

    def test_dense_cluster(self):
        # close roots at 0 and 1/100
        p = up(0, 1) * (up(0, 100) - up(1))
        roots = SturmContext(p).isolate_roots()
        assert len(roots) == 2
        assert roots[0].high <= roots[1].low

    def test_no_real_roots(self):
        assert SturmContext(up(1, 0, 1)).isolate_roots() == []

    def test_refine_halves(self):
        context = SturmContext(up(-2, 0, 1))
        root = [r for r in context.isolate_roots() if r.low >= 0][0]
        refined = context.refine(root)
        if not refined.is_exact:
            assert refined.high - refined.low <= (root.high - root.low) / 2

    def test_refinement_converges_to_sqrt2(self):
        context = SturmContext(up(-2, 0, 1))
        root = [r for r in context.isolate_roots() if r.low >= 0][0]
        for _ in range(40):
            root = context.refine(root)
        mid = float(root.midpoint())
        assert abs(mid - 2**0.5) < 1e-9


@st.composite
def int_poly(draw):
    degree = draw(st.integers(1, 5))
    coeffs = [draw(st.integers(-5, 5)) for _ in range(degree)]
    coeffs.append(draw(st.integers(1, 5)))  # nonzero leading
    return UPoly.from_fractions(coeffs)


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(int_poly())
    def test_isolation_intervals_disjoint_and_complete(self, p):
        context = SturmContext(p)
        roots = context.isolate_roots()
        assert len(roots) == context.count_real_roots()
        for a, b in zip(roots, roots[1:]):
            assert a.high <= b.low
        for root in roots:
            if root.is_exact:
                assert context.poly.sign_at(root.low) == 0
            else:
                assert (
                    context.count_roots_open(root.low, root.high) == 1
                )

    @settings(max_examples=80, deadline=None)
    @given(int_poly(), int_poly())
    def test_gcd_divides_both(self, p, q):
        g = p.gcd(q)
        if g.degree() >= 1:
            _, r1 = p.divmod(g)
            _, r2 = q.divmod(g)
            assert r1.is_zero() and r2.is_zero()
