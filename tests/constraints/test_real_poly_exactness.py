"""Exactness property tests for polynomial quantifier elimination.

The projection must agree with an independent decision path: for random
conjunctions, ``exists z . conj`` holds at a grid point of the remaining
variables iff pinning those variables keeps the conjunction satisfiable.
This is the same adversarial check that exposed the dense-order
disequality-projection bug.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.real_poly import PolyAtom, RealPolynomialTheory, poly_eq
from repro.poly.polynomial import poly_var

theory = RealPolynomialTheory()
x = poly_var("x")
z = poly_var("z")


@st.composite
def linear_conjunction(draw):
    atoms = []
    for _ in range(draw(st.integers(1, 4))):
        cz = draw(st.integers(-2, 2))
        cx = draw(st.integers(-2, 2))
        constant = draw(st.integers(-3, 3))
        op = draw(st.sampled_from(["=", "!=", "<", "<="]))
        poly = cz * z + cx * x + constant
        if poly.is_constant():
            continue
        atoms.append(PolyAtom(poly, op))
    return tuple(atoms)


@st.composite
def quadratic_conjunction(draw):
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        a = draw(st.integers(-1, 1))
        b = draw(st.integers(-2, 2))
        cx = draw(st.integers(-1, 1))
        constant = draw(st.integers(-3, 3))
        op = draw(st.sampled_from(["=", "<", "<="]))
        poly = a * z * z + b * z + cx * x + constant
        if "z" not in poly.variables() and "x" not in poly.variables():
            continue
        atoms.append(PolyAtom(poly, op))
    return tuple(atoms)


def _projection_agrees(atoms, value):
    result = theory.eliminate(atoms, ["z"])
    point = {"x": Fraction(value)}
    via_projection = any(
        all(atom.holds(point) for atom in conj) for conj in result
    )
    pinned = tuple(atoms) + (poly_eq(x, Fraction(value)),)
    via_sat = theory.is_satisfiable(pinned)
    return via_projection == via_sat, via_projection, via_sat


class TestLinearExactness:
    @settings(max_examples=120, deadline=None)
    @given(linear_conjunction(), st.integers(-4, 4))
    def test_projection_matches_satisfiability(self, atoms, value):
        agrees, proj, sat = _projection_agrees(atoms, value)
        assert agrees, (atoms, value, proj, sat)


class TestQuadraticExactness:
    @settings(max_examples=60, deadline=None)
    @given(quadratic_conjunction(), st.integers(-3, 3))
    def test_projection_matches_satisfiability(self, atoms, value):
        agrees, proj, sat = _projection_agrees(atoms, value)
        assert agrees, (atoms, value, proj, sat)


class TestKnownHardCases:
    def test_punctured_disk(self):
        # exists z: x^2 + z^2 <= 1 and z != 0 -- excludes only x = +-1
        atoms = (
            PolyAtom(x * x + z * z - 1, "<="),
            PolyAtom(z, "!="),
        )
        result = theory.eliminate(atoms, ["z"])

        def holds(value):
            return any(
                all(a.holds({"x": Fraction(value)}) for a in conj)
                for conj in result
            )

        assert holds(0)
        assert holds(Fraction(1, 2))
        assert not holds(1)  # only z = 0 available at the boundary
        assert not holds(-1)
        assert not holds(2)

    def test_equation_with_disequality_side(self):
        # exists z: z^2 = x and z != 1 -- excludes nothing except... x = 1
        # still has z = -1, so the projection is exactly x >= 0
        atoms = (PolyAtom(z * z - x, "="), PolyAtom(z - 1, "!="))
        result = theory.eliminate(atoms, ["z"])

        def holds(value):
            return any(
                all(a.holds({"x": Fraction(value)}) for a in conj)
                for conj in result
            )

        assert holds(0)
        assert holds(1)  # witness z = -1
        assert holds(4)
        assert not holds(-1)
