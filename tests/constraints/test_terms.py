"""Tests for the shared term layer of the pointwise theories."""

from fractions import Fraction

import pytest

from repro.constraints.terms import (
    Const,
    Var,
    as_term,
    eval_term,
    rename_term,
    term_sort_key,
)


class TestCoercion:
    def test_string_is_variable(self):
        assert as_term("x") == Var("x")

    def test_numbers_are_rational_constants(self):
        assert as_term(3) == Const(Fraction(3))
        assert as_term(Fraction(1, 2)) == Const(Fraction(1, 2))

    def test_float_approximated(self):
        term = as_term(0.5)
        assert isinstance(term, Const)
        assert term.value == Fraction(1, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_term(True)

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            as_term(object())

    def test_terms_pass_through(self):
        v = Var("a")
        assert as_term(v) is v


class TestOrdering:
    def test_variables_before_constants(self):
        assert term_sort_key(Var("z")) < term_sort_key(Const(Fraction(0)))

    def test_variables_by_name(self):
        assert term_sort_key(Var("a")) < term_sort_key(Var("b"))

    def test_mixed_constant_types_deterministic(self):
        keys = sorted(
            [term_sort_key(Const(1)), term_sort_key(Const("x")), term_sort_key(Const(2))]
        )
        assert len(set(keys)) == 3


class TestEvalRename:
    def test_eval(self):
        assert eval_term(Var("x"), {"x": 7}) == 7
        assert eval_term(Const(9), {}) == 9

    def test_rename(self):
        assert rename_term(Var("x"), {"x": "y"}) == Var("y")
        assert rename_term(Var("z"), {"x": "y"}) == Var("z")
        assert rename_term(Const(5), {"x": "y"}) == Const(5)

    def test_str(self):
        assert str(Var("x")) == "x"
        assert str(Const(Fraction(1, 2))) == "1/2"
