"""Tests for the dense linear order theory (Section 3 of the paper)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import (
    DenseOrderTheory,
    OrderAtom,
    between,
    eq,
    gt,
    le,
    lt,
    ne,
)
from repro.constraints.terms import Const, Var
from repro.errors import TheoryError
from repro.logic.syntax import Or

theory = DenseOrderTheory()


class TestAtoms:
    def test_gt_normalizes_to_lt(self):
        atom = gt("x", "y")
        assert atom.op == "<"
        assert atom.left == Var("y")
        assert atom.right == Var("x")

    def test_symmetric_operand_order(self):
        assert eq("y", "x") == eq("x", "y")
        assert ne(3, "x") == ne("x", 3)

    def test_constants_are_fractions(self):
        atom = lt("x", 3)
        assert atom.right == Const(Fraction(3))

    def test_non_fraction_constant_rejected(self):
        with pytest.raises(TheoryError):
            OrderAtom("<", Var("x"), Const("hello"))

    def test_bad_operator_rejected(self):
        with pytest.raises(TheoryError):
            OrderAtom(">", Var("x"), Var("y"))

    def test_holds(self):
        point = {"x": Fraction(1), "y": Fraction(2)}
        assert lt("x", "y").holds(point)
        assert not lt("y", "x").holds(point)
        assert le("x", 1).holds(point)
        assert eq("y", 2).holds(point)
        assert ne("x", "y").holds(point)

    def test_rename(self):
        assert lt("x", "y").rename({"x": "a"}) == lt("a", "y")

    def test_between(self):
        atoms = between("x", 0, 1)
        assert all(a.holds({"x": Fraction(1, 2)}) for a in atoms)
        assert not all(a.holds({"x": Fraction(2)}) for a in atoms)


class TestNegation:
    def test_negate_lt(self):
        negation = theory.negate_atom(lt("x", "y"))
        assert isinstance(negation, Or)
        assert set(negation.children) == {lt("y", "x"), eq("x", "y")}

    def test_negate_le(self):
        assert theory.negate_atom(le("x", "y")) == lt("y", "x")

    def test_negate_eq(self):
        assert theory.negate_atom(eq("x", "y")) == ne("x", "y")

    def test_negate_ne(self):
        assert theory.negate_atom(ne("x", "y")) == eq("x", "y")


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert theory.is_satisfiable(())

    def test_simple_chain(self):
        assert theory.is_satisfiable((lt("x", "y"), lt("y", "z")))

    def test_strict_cycle_unsat(self):
        assert not theory.is_satisfiable((lt("x", "y"), lt("y", "x")))

    def test_weak_cycle_is_equality(self):
        assert theory.is_satisfiable((le("x", "y"), le("y", "x")))
        assert not theory.is_satisfiable((le("x", "y"), le("y", "x"), ne("x", "y")))

    def test_constant_sandwich(self):
        assert theory.is_satisfiable((lt(0, "x"), lt("x", 1)))
        assert not theory.is_satisfiable((lt(1, "x"), lt("x", 0)))

    def test_point_interval(self):
        # 1 <= x <= 1 forces x = 1
        atoms = (le(1, "x"), le("x", 1))
        assert theory.is_satisfiable(atoms)
        assert not theory.is_satisfiable(atoms + (ne("x", 1),))

    def test_density_no_integrality(self):
        # in a dense order there is always a point strictly between constants
        assert theory.is_satisfiable((lt(0, "x"), lt("x", Fraction(1, 10**9))))

    def test_disequality_chain_satisfiable(self):
        atoms = (ne("x", "y"), ne("y", "z"), ne("x", "z"))
        assert theory.is_satisfiable(atoms)

    def test_implied_equality_contradiction(self):
        # x <= y <= z <= x forces x = z; x != z contradicts
        atoms = (le("x", "y"), le("y", "z"), le("z", "x"), ne("x", "z"))
        assert not theory.is_satisfiable(atoms)

    def test_equality_to_distinct_constants(self):
        assert not theory.is_satisfiable((eq("x", 1), eq("x", 2)))


class TestEntailment:
    def test_transitive(self):
        assert theory.entails((lt("x", "y"), lt("y", "z")), lt("x", "z"))

    def test_constant_bound(self):
        assert theory.entails((eq("x", 1),), lt(0, "x"))
        assert not theory.entails((lt(0, "x"),), eq("x", 1))

    def test_weak_strengthening(self):
        assert theory.entails((le("x", "y"), ne("x", "y")), lt("x", "y"))

    def test_equivalent(self):
        left = (le("x", "y"), le("y", "x"))
        right = (eq("x", "y"),)
        assert theory.equivalent(left, right)
        assert not theory.equivalent(left, (lt("x", "y"),))


class TestCanonicalize:
    def test_unsat_returns_none(self):
        assert theory.canonicalize((lt("x", "y"), lt("y", "x"))) is None

    def test_weak_cycle_becomes_equality(self):
        canonical = theory.canonicalize((le("x", "y"), le("y", "x")))
        assert canonical == (eq("x", "y"),)

    def test_redundancy_pruned(self):
        canonical = theory.canonicalize((lt("x", "y"), lt("y", "z"), lt("x", "z")))
        assert canonical == tuple(sorted((lt("x", "y"), lt("y", "z")), key=str))

    def test_equivalent_conjunctions_same_form(self):
        left = theory.canonicalize((le("x", "y"), ne("x", "y")))
        right = theory.canonicalize((lt("x", "y"),))
        assert left == right

    def test_idempotent(self):
        atoms = (lt(0, "x"), lt("x", "y"), le("y", 5), ne("x", 3))
        once = theory.canonicalize(atoms)
        twice = theory.canonicalize(once)
        assert once == twice


class TestElimination:
    def test_density_combination(self):
        result = theory.eliminate((lt("x", "z"), lt("z", "y")), ["z"])
        assert len(result) == 1
        assert theory.equivalent(result[0], (lt("x", "y"),))

    def test_weak_weak_combination(self):
        result = theory.eliminate((le("x", "z"), le("z", "y")), ["z"])
        assert theory.equivalent(result[0], (le("x", "y"),))

    def test_equality_substitution(self):
        result = theory.eliminate((eq("z", "x"), lt("z", "y")), ["z"])
        assert theory.equivalent(result[0], (lt("x", "y"),))

    def test_unbounded_side_vanishes(self):
        result = theory.eliminate((lt("x", "z"),), ["z"])
        assert result == [()] or theory.equivalent(result[0], ())

    def test_disequality_dropped_by_density(self):
        result = theory.eliminate((lt(0, "z"), lt("z", 1), ne("z", Fraction(1, 2))), ["z"])
        assert len(result) == 1
        assert theory.equivalent(result[0], ())

    def test_disequality_kept_under_equality(self):
        # exists z (z = x and z != y)  ==  x != y, here as the DNF x<y or y<x
        result = theory.eliminate((eq("z", "x"), ne("z", "y")), ["z"])
        for x_val, y_val, expected in [
            (Fraction(1), Fraction(2), True),
            (Fraction(2), Fraction(1), True),
            (Fraction(1), Fraction(1), False),
        ]:
            point = {"x": x_val, "y": y_val}
            holds = any(all(a.holds(point) for a in conj) for conj in result)
            assert holds == expected

    def test_punctured_interval_projection_is_disjunction(self):
        # the regression for the soundness bug: exists x with a <= x <= b and
        # x != c must exclude the collapsed point a = b = c
        result = theory.eliminate((le("a", "x"), le("x", "b"), ne("x", "c")), ["x"])
        collapsed = {"a": Fraction(0), "b": Fraction(0), "c": Fraction(0)}
        assert not any(
            all(a.holds(collapsed) for a in conj) for conj in result
        )
        open_interval = {"a": Fraction(0), "b": Fraction(1), "c": Fraction(0)}
        assert any(all(a.holds(open_interval) for a in conj) for conj in result)

    def test_unsat_gives_empty(self):
        assert theory.eliminate((lt("z", 0), lt(1, "z")), ["z"]) == []

    def test_multiple_variables(self):
        atoms = (lt("a", "u"), lt("u", "v"), lt("v", "b"))
        result = theory.eliminate(atoms, ["u", "v"])
        assert theory.equivalent(result[0], (lt("a", "b"),))

    def test_projection_semantics_by_sampling(self):
        # points satisfying the projection extend to the full constraint
        atoms = (lt(0, "z"), lt("z", "x"), lt("x", 10), ne("z", "x"))
        result = theory.eliminate(atoms, ["z"])
        assert len(result) == 1
        point = theory.sample_point(result[0], ["x"])
        assert point is not None
        extended = theory.sample_point(atoms, ["x", "z"])
        assert extended is not None
        assert all(a.holds(extended) for a in atoms)


class TestSamplePoint:
    def test_simple(self):
        point = theory.sample_point((lt(0, "x"), lt("x", 1)), ["x"])
        assert point is not None and 0 < point["x"] < 1

    def test_unsat(self):
        assert theory.sample_point((lt("x", 0), lt(1, "x")), ["x"]) is None

    def test_respects_disequalities(self):
        # avoid every dyadic-ish candidate: x in [0,1], x != 0, 1/2, 1/4, 3/4, 1
        forbidden = [0, Fraction(1, 2), Fraction(1, 4), Fraction(3, 4), 1]
        atoms = tuple([le(0, "x"), le("x", 1)] + [ne("x", f) for f in forbidden])
        point = theory.sample_point(atoms, ["x"])
        assert point is not None
        assert all(a.holds(point) for a in atoms)

    def test_equalities_propagate(self):
        atoms = (eq("x", "y"), eq("y", 7))
        point = theory.sample_point(atoms, ["x", "y"])
        assert point == {"x": Fraction(7), "y": Fraction(7)}

    def test_unconstrained_variable(self):
        point = theory.sample_point((), ["x"])
        assert point is not None and "x" in point


@st.composite
def random_conjunction(draw):
    variables = ["a", "b", "c"]
    constants = [Fraction(0), Fraction(1), Fraction(2)]
    atoms = []
    for _ in range(draw(st.integers(0, 6))):
        op = draw(st.sampled_from(["<", "<=", "=", "!="]))
        left = draw(st.sampled_from(variables))
        right_kind = draw(st.booleans())
        right = draw(st.sampled_from(variables if right_kind else constants))
        if left == right:
            continue
        atoms.append(OrderAtom(op, Var(left), _term(right)))
    return tuple(atoms)


def _term(value):
    if isinstance(value, str):
        return Var(value)
    return Const(value)


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(random_conjunction())
    def test_sample_point_satisfies(self, atoms):
        point = theory.sample_point(atoms, ["a", "b", "c"])
        if theory.is_satisfiable(atoms):
            assert point is not None
            assert all(a.holds(point) for a in atoms)
        else:
            assert point is None

    @settings(max_examples=150, deadline=None)
    @given(random_conjunction())
    def test_canonicalize_preserves_solutions(self, atoms):
        canonical = theory.canonicalize(atoms)
        if canonical is None:
            assert not theory.is_satisfiable(atoms)
        else:
            assert theory.equivalent(atoms, canonical)

    @settings(max_examples=100, deadline=None)
    @given(random_conjunction())
    def test_elimination_is_projection(self, atoms):
        result = theory.eliminate(atoms, ["c"])
        # soundness: every sample of the projection extends to the original
        for conj in result:
            point = theory.sample_point(conj, ["a", "b"])
            assert point is not None
            extended = theory.sample_point(
                tuple(atoms)
                + (eq("a", point["a"]), eq("b", point["b"])),
                ["a", "b", "c"],
            )
            assert extended is not None
        # completeness: a sample of the original satisfies the projection
        full = theory.sample_point(atoms, ["a", "b", "c"])
        if full is not None:
            assert any(
                all(atom.holds(full) for atom in conj) for conj in result
            )


class TestEliminationExactness:
    @settings(max_examples=150, deadline=None)
    @given(random_conjunction(), st.integers(-1, 3), st.integers(-1, 3))
    def test_projection_matches_satisfiability(self, atoms, a_val, b_val):
        """exists c . conj holds at (a, b) iff conj + (a = a_val, b = b_val)
        is satisfiable -- two independent decision paths must agree."""
        result = theory.eliminate(atoms, ["c"])
        point = {"a": Fraction(a_val), "b": Fraction(b_val)}
        via_projection = any(
            all(atom.holds(point) for atom in conj) for conj in result
        )
        via_sat = theory.is_satisfiable(
            tuple(atoms) + (eq("a", a_val), eq("b", b_val))
        )
        assert via_projection == via_sat, (atoms, point)
