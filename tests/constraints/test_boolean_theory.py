"""Tests for the boolean ConstraintTheory wrapper (Section 5 via the
generic interface)."""

import pytest

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.terms import BAnd, BConst, BNot, BOne, BOr, BVar, BXor
from repro.constraints.boolean import BooleanTheory
from repro.core.generalized import GeneralizedRelation
from repro.errors import TheoryError

algebra = FreeBooleanAlgebra.with_generators(2)
theory = BooleanTheory(algebra)


class TestAtoms:
    def test_holds(self):
        atom = theory.zero_of(BXor(BVar("x"), BConst("c0")))
        assert atom.holds({"x": algebra.generator(0)})
        assert not atom.holds({"x": algebra.generator(1)})

    def test_rename(self):
        atom = theory.zero_of(BVar("x") & BVar("y"))
        renamed = atom.rename({"x": "u"})
        assert renamed.variables() == {"u", "y"}

    def test_equality_builder(self):
        atom = theory.equality("x", "y")
        assert atom.holds({"x": algebra.generator(0), "y": algebra.generator(0)})
        assert not atom.holds({"x": algebra.generator(0), "y": algebra.generator(1)})

    def test_equality_with_element(self):
        element = algebra.generator(1)
        atom = theory.equality("x", element)
        assert atom.holds({"x": element})

    def test_foreign_atom_rejected(self):
        from repro.constraints.dense_order import lt

        with pytest.raises(TheoryError):
            theory.validate_atom(lt("x", "y"))

    def test_wrong_algebra_rejected(self):
        other = BooleanTheory(FreeBooleanAlgebra.with_generators(1))
        atom = other.zero_of(BVar("x"))
        with pytest.raises(TheoryError):
            theory.validate_atom(atom)

    def test_negation_unsupported(self):
        with pytest.raises(TheoryError):
            theory.negate_atom(theory.zero_of(BVar("x")))


class TestSolver:
    def test_satisfiable(self):
        assert theory.is_satisfiable((theory.zero_of(BVar("x")),))
        assert not theory.is_satisfiable((theory.zero_of(BOne()),))

    def test_conjunction_merging(self):
        # x = 0 and x' = 0 is unsatisfiable
        atoms = (theory.zero_of(BVar("x")), theory.zero_of(BNot(BVar("x"))))
        assert not theory.is_satisfiable(atoms)

    def test_canonicalize_merges_to_one_atom(self):
        atoms = (
            theory.zero_of(BAnd(BVar("x"), BConst("c0"))),
            theory.zero_of(BAnd(BVar("y"), BConst("c1"))),
        )
        canonical = theory.canonicalize(atoms)
        assert canonical is not None and len(canonical) == 1

    def test_canonicalize_unsat(self):
        assert theory.canonicalize((theory.zero_of(BOne()),)) is None

    def test_canonical_form_equal_for_equal_tables(self):
        # two syntactically different but equal constraints
        a = theory.canonicalize((theory.zero_of(BVar("x") & BVar("x")),))
        b = theory.canonicalize((theory.zero_of(BVar("x")),))
        assert a == b


class TestElimination:
    def test_boole_elimination(self):
        # exists x . (x ^ y) = 0  is always solvable (x := y)
        atom = theory.zero_of(BXor(BVar("x"), BVar("y")))
        result = theory.eliminate((atom,), ["x"])
        assert len(result) == 1
        (conj,) = result
        # the residual constraint on y holds for every y
        for element in list(algebra.all_elements())[:6]:
            assert all(a.holds({"y": element}) for a in conj)

    def test_elimination_to_unsat(self):
        result = theory.eliminate((theory.zero_of(BOne()),), ["x"])
        assert result == []

    def test_partial_elimination(self):
        # exists x . (x | y) = 0 iff y = 0
        atom = theory.zero_of(BOr(BVar("x"), BVar("y")))
        result = theory.eliminate((atom,), ["x"])
        (conj,) = result
        assert all(a.holds({"y": algebra.zero()}) for a in conj)
        assert not all(a.holds({"y": algebra.one()}) for a in conj)


class TestSamplePoint:
    def test_witness(self):
        atom = theory.zero_of(BXor(BVar("x"), BConst("c0")))
        point = theory.sample_point((atom,), ["x"])
        assert point is not None
        assert atom.holds(point)
        assert point["x"] == algebra.generator(0)

    def test_unsat_none(self):
        assert theory.sample_point((theory.zero_of(BOne()),), ["x"]) is None

    def test_unconstrained_defaults(self):
        point = theory.sample_point((), ["x", "y"])
        assert point == {"x": algebra.zero(), "y": algebra.zero()}


class TestEntailmentAndEquivalence:
    def test_entails_pointwise(self):
        strong = theory.zero_of(BOr(BVar("x"), BVar("y")))  # x=0 and y=0
        weak = theory.zero_of(BVar("x"))
        assert theory.entails((strong,), weak)
        assert not theory.entails((weak,), strong)

    def test_equivalent(self):
        a = (theory.zero_of(BVar("x")), theory.zero_of(BVar("y")))
        b = (theory.zero_of(BOr(BVar("x"), BVar("y"))),)
        assert theory.equivalent(a, b)
        assert not theory.equivalent(a, (theory.zero_of(BVar("x")),))


class TestWithGeneralizedRelation:
    def test_relation_over_boolean_theory(self):
        relation = GeneralizedRelation("R", ("x",), theory)
        relation.add_tuple([theory.zero_of(BXor(BVar("x"), BConst("c0")))])
        assert relation.contains_point({"x": algebra.generator(0)})
        assert not relation.contains_point({"x": algebra.generator(1)})
        # duplicate (equivalent) tuple collapses
        assert not relation.add_tuple(
            [theory.zero_of(BXor(BConst("c0"), BVar("x")))]
        )
