"""Tests for equality constraints over an infinite domain (Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.equality import EqualityAtom, EqualityTheory, const, eq, ne
from repro.constraints.terms import Const, Var
from repro.errors import TheoryError

theory = EqualityTheory()


class TestAtoms:
    def test_symmetric_normalization(self):
        assert eq("y", "x") == eq("x", "y")
        assert ne("y", "x") == ne("x", "y")

    def test_string_constants_via_const(self):
        atom = eq("x", const("red"))
        assert atom.holds({"x": "red"})
        assert not atom.holds({"x": "blue"})

    def test_integer_constants(self):
        atom = eq("x", 5)
        assert atom.holds({"x": 5})

    def test_bad_operator(self):
        with pytest.raises(TheoryError):
            EqualityAtom("<", Var("x"), Var("y"))

    def test_rename(self):
        assert ne("x", "y").rename({"y": "z"}) == ne("x", "z")


class TestNegation:
    def test_negate_eq(self):
        assert theory.negate_atom(eq("x", "y")) == ne("x", "y")

    def test_negate_ne(self):
        assert theory.negate_atom(ne("x", "y")) == eq("x", "y")


class TestSatisfiability:
    def test_empty(self):
        assert theory.is_satisfiable(())

    def test_chain_of_equalities(self):
        assert theory.is_satisfiable((eq("x", "y"), eq("y", "z")))

    def test_contradiction(self):
        assert not theory.is_satisfiable((eq("x", "y"), ne("x", "y")))

    def test_transitivity_contradiction(self):
        atoms = (eq("x", "y"), eq("y", "z"), ne("x", "z"))
        assert not theory.is_satisfiable(atoms)

    def test_two_distinct_constants(self):
        assert not theory.is_satisfiable((eq("x", 1), eq("x", 2)))

    def test_infinite_domain_many_disequalities(self):
        # over an infinite domain any disequality graph is satisfiable
        atoms = tuple(
            ne(f"x{i}", f"x{j}") for i in range(5) for j in range(i + 1, 5)
        )
        assert theory.is_satisfiable(atoms)

    def test_disequality_from_constants(self):
        assert theory.is_satisfiable((eq("x", 1), eq("y", 2)))
        assert not theory.is_satisfiable((eq("x", 1), eq("y", 1), ne("x", "y")))


class TestCanonicalize:
    def test_unsat_none(self):
        assert theory.canonicalize((eq("x", "y"), ne("x", "y"))) is None

    def test_constant_becomes_representative(self):
        canonical = theory.canonicalize((eq("x", "y"), eq("y", 3)))
        assert set(canonical) == {eq("x", 3), eq("y", 3)}

    def test_redundant_constant_disequality_dropped(self):
        # x = 1 and y = 2 makes x != y redundant (distinct constants)
        canonical = theory.canonicalize((eq("x", 1), eq("y", 2), ne("x", "y")))
        assert set(canonical) == {eq("x", 1), eq("y", 2)}

    def test_equivalent_same_form(self):
        left = theory.canonicalize((eq("x", "y"), eq("y", "z")))
        right = theory.canonicalize((eq("x", "z"), eq("z", "y")))
        assert left == right


class TestElimination:
    def test_substitution(self):
        result = theory.eliminate((eq("z", "x"), ne("z", "y")), ["z"])
        assert len(result) == 1
        assert theory.equivalent(result[0], (ne("x", "y"),))

    def test_pure_disequalities_vanish(self):
        # exists z (z != x and z != y) is true over an infinite domain
        result = theory.eliminate((ne("z", "x"), ne("z", "y")), ["z"])
        assert len(result) == 1
        assert theory.equivalent(result[0], ())

    def test_unsat_empty(self):
        assert theory.eliminate((eq("z", 1), eq("z", 2)), ["z"]) == []

    def test_chain(self):
        result = theory.eliminate((eq("x", "z"), eq("z", "y")), ["z"])
        assert theory.equivalent(result[0], (eq("x", "y"),))

    def test_constant_propagation(self):
        result = theory.eliminate((eq("z", 7), eq("x", "z")), ["z"])
        assert theory.equivalent(result[0], (eq("x", 7),))


class TestEntailment:
    def test_transitive(self):
        assert theory.entails((eq("x", "y"), eq("y", "z")), eq("x", "z"))

    def test_constant_disequality(self):
        assert theory.entails((eq("x", 1), eq("y", 2)), ne("x", "y"))

    def test_not_entailed(self):
        assert not theory.entails((ne("x", "y"),), eq("x", "y"))


class TestSamplePoint:
    def test_fresh_elements_distinct(self):
        atoms = (ne("x", "y"), ne("y", "z"), ne("x", "z"))
        point = theory.sample_point(atoms, ["x", "y", "z"])
        assert len({point["x"], point["y"], point["z"]}) == 3

    def test_constants_respected(self):
        point = theory.sample_point((eq("x", 5), eq("x", "y")), ["x", "y"])
        assert point == {"x": 5, "y": 5}

    def test_unsat(self):
        assert theory.sample_point((eq("x", 1), ne("x", 1)), ["x"]) is None

    def test_custom_fresh_factory(self):
        custom = EqualityTheory(fresh_factory=lambda i: f"fresh{i}")
        point = custom.sample_point((ne("x", "y"),), ["x", "y"])
        assert point["x"] != point["y"]
        assert str(point["x"]).startswith("fresh")


@st.composite
def random_eq_conjunction(draw):
    variables = ["a", "b", "c"]
    constants = [1, 2]
    atoms = []
    for _ in range(draw(st.integers(0, 6))):
        op = draw(st.sampled_from(["=", "!="]))
        left = draw(st.sampled_from(variables))
        use_var = draw(st.booleans())
        right = draw(st.sampled_from(variables if use_var else constants))
        if left == right:
            continue
        right_term = Var(right) if isinstance(right, str) else Const(right)
        atoms.append(EqualityAtom(op, Var(left), right_term))
    return tuple(atoms)


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(random_eq_conjunction())
    def test_sample_point_iff_satisfiable(self, atoms):
        point = theory.sample_point(atoms, ["a", "b", "c"])
        if theory.is_satisfiable(atoms):
            assert point is not None
            assert all(a.holds(point) for a in atoms)
        else:
            assert point is None

    @settings(max_examples=150, deadline=None)
    @given(random_eq_conjunction())
    def test_canonicalize_equivalence(self, atoms):
        canonical = theory.canonicalize(atoms)
        if canonical is None:
            assert not theory.is_satisfiable(atoms)
        else:
            assert theory.equivalent(atoms, canonical)

    @settings(max_examples=100, deadline=None)
    @given(random_eq_conjunction())
    def test_elimination_sound_and_complete(self, atoms):
        result = theory.eliminate(atoms, ["c"])
        full = theory.sample_point(atoms, ["a", "b", "c"])
        if full is not None:
            assert any(all(atom.holds(full) for atom in conj) for conj in result)
        for conj in result:
            reduced = theory.sample_point(conj, ["a", "b"])
            assert reduced is not None
