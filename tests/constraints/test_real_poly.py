"""Tests for the real polynomial constraint theory (Section 2)."""

from fractions import Fraction

import pytest

from repro.constraints.real_poly import (
    PolyAtom,
    RealPolynomialTheory,
    poly_eq,
    poly_ge,
    poly_gt,
    poly_le,
    poly_lt,
    poly_ne,
)
from repro.errors import TheoryError, UnsupportedEliminationError
from repro.poly.polynomial import poly_var

theory = RealPolynomialTheory()
x = poly_var("x")
y = poly_var("y")
z = poly_var("z")


class TestAtoms:
    def test_constructors_normalize(self):
        assert poly_gt(x, y) == poly_lt(y, x)
        assert poly_ge(x, 0).op == "<="

    def test_bad_op(self):
        with pytest.raises(TheoryError):
            PolyAtom(x, ">")

    def test_holds(self):
        atom = poly_lt(x * x + y * y, 1)
        assert atom.holds({"x": 0, "y": 0})
        assert not atom.holds({"x": 1, "y": 1})

    def test_rename(self):
        atom = poly_eq(x + y, 1)
        renamed = atom.rename({"x": "u"})
        assert renamed.variables() == {"u", "y"}

    def test_paper_example_generalized_tuple(self):
        # Example 1.5: (y = 2x and x != y) -- the line minus the origin
        atoms = (poly_eq(y, 2 * x), poly_ne(x, y))
        assert theory.is_satisfiable(atoms)
        assert theory.holds(atoms, {"x": 1, "y": 2})
        assert not theory.holds(atoms, {"x": 0, "y": 0})


class TestNegation:
    def test_negate_roundtrip(self):
        for atom in [poly_eq(x, 1), poly_ne(x, 1), poly_lt(x, 1), poly_le(x, 1)]:
            double = theory.negate_atom(theory.negate_atom(atom))
            assert theory.equivalent((double,), (atom,))


class TestSatisfiability:
    def test_linear(self):
        assert theory.is_satisfiable((poly_lt(x, 1), poly_lt(0, x)))
        assert not theory.is_satisfiable((poly_lt(x, 0), poly_lt(1, x)))

    def test_quadratic(self):
        assert theory.is_satisfiable((poly_eq(x * x, 2),))
        assert not theory.is_satisfiable((poly_lt(x * x, 0),))
        assert not theory.is_satisfiable((poly_le(x * x + 1, 0),))

    def test_multivariate_linear(self):
        atoms = (poly_lt(x + y + z, 1), poly_lt(0, x), poly_lt(0, y), poly_lt(0, z))
        assert theory.is_satisfiable(atoms)

    def test_circle_and_line(self):
        atoms = (poly_eq(x * x + y * y, 1), poly_eq(y, x))
        assert theory.is_satisfiable(atoms)
        atoms_far = (poly_eq(x * x + y * y, 1), poly_eq(y, x + 5))
        assert not theory.is_satisfiable(atoms_far)

    def test_quartic_bivariate_via_cad(self):
        atoms = (poly_eq(y**4, x), poly_lt(x, 0))
        assert not theory.is_satisfiable(atoms)
        atoms_ok = (poly_eq(y**4, x), poly_lt(0, x))
        assert theory.is_satisfiable(atoms_ok)

    def test_unsupported_raises(self):
        atoms = (poly_eq(x**3 + y**3 + z**3, 1),)
        with pytest.raises(UnsupportedEliminationError):
            theory.is_satisfiable(atoms)


class TestCanonicalize:
    def test_scaling_normalized(self):
        a = theory.canonicalize((poly_lt(2 * x - 4, 0),))
        b = theory.canonicalize((poly_lt(x - 2, 0),))
        assert a == b

    def test_order_sign_preserved(self):
        # -x < 0 is x > 0, not x < 0
        canonical = theory.canonicalize((poly_lt(-x, 0),))
        (atom,) = canonical
        assert atom.holds({"x": 1})
        assert not atom.holds({"x": -1})

    def test_ground_true_dropped(self):
        canonical = theory.canonicalize((poly_lt(-1, 0), poly_lt(x, 1)))
        assert len(canonical) == 1

    def test_ground_false_none(self):
        assert theory.canonicalize((poly_lt(1, 0),)) is None

    def test_unsat_detected(self):
        assert theory.canonicalize((poly_lt(x, 0), poly_lt(0, x))) is None


class TestElimination:
    def test_linear_projection(self):
        result = theory.eliminate((poly_lt(x, z), poly_lt(z, y)), ["z"])
        assert result
        assert any(theory.holds(conj, {"x": 0, "y": 1}) for conj in result)
        assert not any(theory.holds(conj, {"x": 1, "y": 0}) for conj in result)

    def test_circle_projection(self):
        result = theory.eliminate((poly_eq(x * x + y * y, 1),), ["y"])
        inside = {"x": Fraction(1, 2)}
        outside = {"x": Fraction(3, 2)}
        assert any(theory.holds(conj, inside) for conj in result)
        assert not any(theory.holds(conj, outside) for conj in result)

    def test_example_19_not_closed_for_equalities_alone(self):
        # Example 1.9: exists x . y = x^2 projects to y >= 0, which needs an
        # inequality -- our theory has inequalities, so the result is exact
        result = theory.eliminate((poly_eq(y, x * x),), ["x"])
        assert any(theory.holds(conj, {"y": 4}) for conj in result)
        assert any(theory.holds(conj, {"y": 0}) for conj in result)
        assert not any(theory.holds(conj, {"y": -1}) for conj in result)


class TestSamplePoint:
    def test_full_dimensional(self):
        point = theory.sample_point((poly_lt(x * x + y * y, 1),), ["x", "y"])
        assert point is not None
        assert point["x"] ** 2 + point["y"] ** 2 < 1

    def test_linear_equality(self):
        point = theory.sample_point((poly_eq(x + y, 3), poly_lt(0, x)), ["x", "y"])
        assert point is not None
        assert point["x"] + point["y"] == 3 and point["x"] > 0

    def test_unsat(self):
        assert theory.sample_point((poly_lt(x * x, 0),), ["x"]) is None

    def test_irrational_only_returns_none(self):
        # solutions exist but are irrational; the documented limitation
        assert theory.sample_point((poly_eq(x * x, 2),), ["x"]) is None

    def test_rational_root_found(self):
        point = theory.sample_point((poly_eq(x * x, 4), poly_lt(0, x)), ["x"])
        assert point is not None and point["x"] == 2
