"""Tests for the TheoryCache memo layer on ConstraintTheory."""


from repro.constraints.base import TheoryCache
from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.constraints.real_poly import RealPolynomialTheory, poly_lt
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_rules
from repro.poly.polynomial import poly_var


class TestCounters:
    def test_sat_hit_and_miss(self):
        theory = DenseOrderTheory()
        conj = (lt("x", "y"), lt("y", "x"))
        assert not theory.is_satisfiable(conj)
        assert theory.cache.stats.sat_misses == 1
        assert not theory.is_satisfiable(conj)
        assert theory.cache.stats.sat_hits == 1
        assert theory.cache.stats.sat_misses == 1

    def test_key_is_order_and_multiplicity_insensitive(self):
        theory = DenseOrderTheory()
        a, b = lt("x", "y"), lt("y", 3)
        assert theory.is_satisfiable((a, b))
        # permuted and duplicated conjunctions are the same frozenset key
        assert theory.is_satisfiable((b, a))
        assert theory.is_satisfiable((a, b, a))
        assert theory.cache.stats.sat_hits == 2
        assert theory.cache.stats.sat_misses == 1

    def test_canonicalize_counters(self):
        theory = DenseOrderTheory()
        conj = (le(0, "x"), lt("x", "y"))
        first = theory.canonicalize(conj)
        second = theory.canonicalize(conj)
        assert first == second
        assert theory.cache.stats.canon_misses == 1
        assert theory.cache.stats.canon_hits == 1


class TestCrossPopulation:
    def test_unsat_canonicalize_answers_sat(self):
        theory = DenseOrderTheory()
        conj = (lt("x", "y"), lt("y", "x"))
        assert theory.canonicalize(conj) is None
        # is_satisfiable must be answered from the cache, no sat miss
        assert not theory.is_satisfiable(conj)
        assert theory.cache.stats.sat_hits == 1
        assert theory.cache.stats.sat_misses == 0

    def test_sat_canonicalize_answers_sat_when_exact(self):
        theory = DenseOrderTheory()
        assert theory.canonical_decides_sat
        conj = (le(0, "x"), lt("x", "y"))
        assert theory.canonicalize(conj) is not None
        assert theory.is_satisfiable(conj)
        assert theory.cache.stats.sat_hits == 1
        assert theory.cache.stats.sat_misses == 0

    def test_polynomial_canonicalize_does_not_decide_sat(self):
        theory = RealPolynomialTheory()
        assert not theory.canonical_decides_sat
        x = poly_var("x")
        conj = (poly_lt(x, 1),)
        assert theory.canonicalize(conj) is not None
        # the canonical form is sound-but-incomplete: a satisfiable answer
        # must still come from the real solver
        theory.is_satisfiable(conj)
        assert theory.cache.stats.sat_misses == 1


class TestEnableAndEviction:
    def test_disabled_cache_bypasses(self):
        theory = DenseOrderTheory()
        theory.cache.enabled = False
        conj = (lt("x", "y"),)
        theory.is_satisfiable(conj)
        theory.is_satisfiable(conj)
        theory.canonicalize(conj)
        stats = theory.cache.stats
        assert (stats.hits, stats.misses) == (0, 0)

    def test_fifo_eviction_bounds_memory(self):
        cache = TheoryCache(maxsize=4)
        theory = DenseOrderTheory(cache=cache)
        for k in range(10):
            theory.is_satisfiable((lt("x", k),))
        assert len(cache._sat) <= 4
        # the earliest entries were evicted: re-asking misses again
        misses = cache.stats.sat_misses
        theory.is_satisfiable((lt("x", 0),))
        assert cache.stats.sat_misses == misses + 1

    def test_clear(self):
        theory = DenseOrderTheory()
        theory.is_satisfiable((lt("x", "y"),))
        theory.cache.clear()
        theory.is_satisfiable((lt("x", "y"),))
        assert theory.cache.stats.sat_misses == 2


class TestEngineIntegration:
    def test_evaluate_restores_enabled_flag(self):
        theory = DenseOrderTheory()
        db = GeneralizedDatabase(theory)
        edges = db.create_relation("E", ("x", "y"))
        edges.add_point([0, 1])
        rules = parse_rules("T(x, y) :- E(x, y).", theory=theory)
        program = DatalogProgram(
            rules, theory, options=EngineOptions(theory_cache=False)
        )
        assert theory.cache.enabled
        program.evaluate(db)
        assert theory.cache.enabled

    def test_stats_report_nonzero_cache_hits(self):
        theory = DenseOrderTheory()
        db = GeneralizedDatabase(theory)
        edges = db.create_relation("E", ("x", "y"))
        for i in range(6):
            edges.add_point([i, i + 1])
        rules = parse_rules(
            "T(x, y) :- E(x, y).\nT(x, y) :- T(x, z), E(z, y).", theory=theory
        )
        _, stats = DatalogProgram(rules, theory).evaluate(db)
        assert stats.cache_hits > 0
        assert stats.theory_cache_hits > 0
        # index probes narrow candidates before the pin filter sees them, so
        # exercise the pin filter with probes off
        program = DatalogProgram(
            rules, theory, options=EngineOptions(index_probes=False)
        )
        _, stats = program.evaluate(db)
        assert stats.pin_prunes > 0
