"""Per-rung budgets on the QE degradation ladder (FM -> VS -> CAD).

With ``qe_rung_steps`` set, each of the FM and VS rungs runs under a child
meter: when a rung exhausts its cap the ladder falls through to the next
backend instead of aborting the whole run, and the final answer is the same
set of solutions (degradation changes *which* engine answers, never the
answer).  Global budgets still apply inside rungs and do abort.
"""

from fractions import Fraction

import pytest

from repro.constraints.real_poly import (
    RealPolynomialTheory,
    poly_gt,
    poly_lt,
    poly_ne,
)
from repro.errors import BudgetExceededError
from repro.poly.polynomial import poly_var
from repro.runtime.budget import Budget, supervised

theory = RealPolynomialTheory()

x = poly_var("x")
y = poly_var("y")

#: a feasible linear system in two variables: 0 < x < y < 1, plus two
#: disequalities on x -- FM splits each into two strict branches, so the
#: elimination walks four branches (four qe_step ticks)
ATOMS = (
    poly_gt(x),                        # x > 0
    poly_lt(x - y),                    # x < y
    poly_lt(y - 1),                    # y < 1
    poly_ne(x - Fraction(1, 2)),       # x != 1/2
    poly_ne(x - Fraction(1, 3)),       # x != 1/3
)


def _solutions(conjunctions):
    """Normalize an eliminate() result for comparison."""
    return {
        frozenset(str(atom) for atom in conj) for conj in conjunctions
    }


def _satisfiable_points(conjunctions, samples):
    """Evaluate each residual conjunction at sample y values (semantic check)."""
    outcomes = []
    for value in samples:
        holds = any(
            all(atom.holds({"y": value}) for atom in conj)
            for conj in conjunctions
        )
        outcomes.append(holds)
    return outcomes


SAMPLES = [Fraction(-1), Fraction(0), Fraction(1, 2), Fraction(1), Fraction(2)]


class TestRungDegradation:
    def test_unbudgeted_baseline(self):
        result = theory.eliminate(ATOMS, ["x"])
        # exists x: 0 < x < y  and  y < 1  ==  0 < y < 1
        assert _satisfiable_points(result, SAMPLES) == [
            False,
            False,
            True,
            False,
            False,
        ]

    def test_tiny_rung_budget_degrades_without_changing_answer(self):
        baseline = theory.eliminate(ATOMS, ["x"])
        with supervised(Budget(qe_rung_steps=1)) as meter:
            degraded = theory.eliminate(ATOMS, ["x"])
            # the tripped rungs' ticks were still charged globally
            assert meter.counts["qe_step"] >= 1
        assert _satisfiable_points(degraded, SAMPLES) == _satisfiable_points(
            baseline, SAMPLES
        )

    def test_generous_rung_budget_keeps_first_rung(self):
        baseline = theory.eliminate(ATOMS, ["x"])
        with supervised(Budget(qe_rung_steps=10_000)):
            result = theory.eliminate(ATOMS, ["x"])
        assert _solutions(result) == _solutions(baseline)

    def test_global_qe_budget_still_aborts(self):
        with supervised(Budget(qe_steps=1)):
            with pytest.raises(BudgetExceededError) as info:
                theory.eliminate(ATOMS, ["x"])
        assert info.value.report.scope == "global"
        assert info.value.report.budget_kind == "qe_steps"

    def test_rung_budget_without_meter_is_ignored(self):
        # qe_rung_steps only means something under an installed meter
        result = theory.eliminate(ATOMS, ["x"])
        assert result  # no supervisor, no caps, normal answer
