"""Graceful degradation of the Datalog fixpoint under budgets.

The soundness claim under test (see ``DatalogProgram.evaluate``): every
stage of the inflationary/semi-naive iteration is a subset of the final
fixpoint (Thm 3.14.2 semantics), so a budget-killed run in ``"fringe"``
mode returns a *sound under-approximation* -- every returned tuple is in
the unbudgeted answer.
"""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.errors import BudgetExceededError
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def _chain_db(n):
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        edge.add_point([i, i + 1])
    return db


def _atom_sets(relation):
    return {frozenset(item.atoms) for item in relation}


def _evaluate(db, budget=None, **evaluate_kwargs):
    rules = parse_rules(TC_RULES, theory=order)
    program = DatalogProgram(rules, order, options=EngineOptions(budget=budget))
    return program.evaluate(db, **evaluate_kwargs)


class TestRaiseMode:
    def test_rounds_budget_raises_with_report(self):
        with pytest.raises(BudgetExceededError) as info:
            _evaluate(_chain_db(20), budget=Budget(rounds=3))
        report = info.value.report
        assert report.budget_kind == "rounds"
        assert report.counts["round"] == 4

    def test_tuple_budget_raises(self):
        with pytest.raises(BudgetExceededError) as info:
            _evaluate(_chain_db(20), budget=Budget(tuples=10))
        assert info.value.report.budget_kind == "tuples"

    def test_generous_budget_changes_nothing(self):
        world, stats = _evaluate(
            _chain_db(6), budget=Budget(rounds=1000, tuples=100000)
        )
        baseline, _ = _evaluate(_chain_db(6))
        assert _atom_sets(world.relation("T")) == _atom_sets(
            baseline.relation("T")
        )
        assert not stats.incomplete


class TestFringeMode:
    def test_partial_is_sound_subset(self):
        full_world, full_stats = _evaluate(_chain_db(20))
        part_world, part_stats = _evaluate(
            _chain_db(20), budget=Budget(rounds=3, partial_results="fringe")
        )
        full = _atom_sets(full_world.relation("T"))
        part = _atom_sets(part_world.relation("T"))
        assert part < full  # strictly fewer tuples, all of them sound
        assert part_stats.incomplete
        assert not full_stats.incomplete
        assert part_stats.budget["budget_kind"] == "rounds"

    def test_partial_contains_all_base_edges(self):
        world, stats = _evaluate(
            _chain_db(12), budget=Budget(rounds=2, partial_results="fringe")
        )
        t = world.relation("T")
        for i in range(12):
            assert t.contains_values([Fraction(i), Fraction(i + 1)])
        assert stats.incomplete

    def test_stats_budget_payload_is_structured(self):
        _world, stats = _evaluate(
            _chain_db(20), budget=Budget(tuples=15, partial_results="fringe")
        )
        assert stats.incomplete
        payload = stats.budget
        assert payload["budget_kind"] == "tuples"
        assert payload["scope"] == "global"
        assert payload["counts"]["tuple"] >= 15
        assert stats.as_dict()["incomplete"] is True

    def test_fringe_mode_under_naive_order(self):
        full_world, _ = _evaluate(_chain_db(15))
        part_world, part_stats = _evaluate(
            _chain_db(15),
            budget=Budget(rounds=2, partial_results="fringe"),
            semi_naive=False,
        )
        assert _atom_sets(part_world.relation("T")) <= _atom_sets(
            full_world.relation("T")
        )
        assert part_stats.incomplete

    def test_interval_tuples_fringe_is_sound(self):
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(8):
            edge.add_tuple([le(i, "x"), lt("x", "y"), le("y", i + 1)])
        full_world, _ = _evaluate(db)

        db2 = GeneralizedDatabase(order)
        edge2 = db2.create_relation("E", ("x", "y"))
        for i in range(8):
            edge2.add_tuple([le(i, "x"), lt("x", "y"), le("y", i + 1)])
        part_world, part_stats = _evaluate(
            db2, budget=Budget(rounds=2, partial_results="fringe")
        )
        assert part_stats.incomplete
        assert _atom_sets(part_world.relation("T")) <= _atom_sets(
            full_world.relation("T")
        )


class TestDeadlineAcceptance:
    """The ISSUE.md acceptance criterion: a dense-order transitive-closure
    query that runs for seconds unbudgeted returns a sound partial fringe
    under a 50 ms deadline."""

    N = 55  # long chain: the full closure has N*(N+1)/2 tuples

    def test_deadline_yields_sound_partial_fringe(self):
        part_world, part_stats = _evaluate(
            _chain_db(self.N),
            budget=Budget(deadline_seconds=0.05, partial_results="fringe"),
        )
        assert part_stats.incomplete
        assert part_stats.budget["budget_kind"] == "deadline"

        full_world, full_stats = _evaluate(_chain_db(self.N))
        assert not full_stats.incomplete
        part = _atom_sets(part_world.relation("T"))
        full = _atom_sets(full_world.relation("T"))
        assert part < full
        # the fringe made real progress before the deadline
        assert len(part) >= self.N
