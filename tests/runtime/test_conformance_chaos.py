"""Chaos/budget wiring of the differential conformance runner.

The fast tests here run in the default suite; the seeded multi-theory chaos
sweeps are marked ``chaos`` and excluded from ``pytest`` by default (the
nightly CI job runs them with ``-m chaos``).  The property under test is the
ISSUE acceptance criterion: under fault injection the strategies may run
slower, retry, or die with a sanctioned degradation error -- but whenever
two strategies both produce an answer, the answers agree.
"""

from collections import Counter

import pytest

from repro.conformance.generators import generate_case
from repro.conformance.runner import run_case, run_conformance
from repro.conformance.spec import build_theory
from repro.constraints.boolean import BooleanTheory
from repro.runtime.budget import Budget
from repro.runtime.chaos import (
    ChaosPolicy,
    ChaosRuntime,
    chaos_scope,
    unwrap_theory,
)


class TestBudgetedRunCase:
    def test_starved_budget_counts_degradations_not_discrepancies(self):
        spec = generate_case("dense_order", 42)
        degraded = Counter()
        found = run_case(
            spec, None, Budget(deadline_seconds=0.0), degraded
        )
        assert found is None  # degraded runs are never discrepancies
        assert degraded["BudgetExceededError"] >= 1

    def test_no_budget_no_degradations(self):
        spec = generate_case("dense_order", 42)
        degraded = Counter()
        assert run_case(spec, None, None, degraded) is None
        assert not degraded


class TestChaosBuildTheory:
    def test_build_theory_hardens_under_scope(self):
        spec = generate_case("boolean", 7)
        bare = build_theory(spec)
        assert isinstance(bare, BooleanTheory)
        with chaos_scope(ChaosPolicy(seed=1)):
            wrapped = build_theory(spec)
        assert wrapped is not bare
        assert isinstance(unwrap_theory(wrapped), BooleanTheory)


@pytest.mark.chaos
class TestChaosSweep:
    """Seeded fault-injection sweeps across every constraint theory."""

    @pytest.mark.parametrize(
        "theory", ["dense_order", "equality", "boolean", "real_poly"]
    )
    def test_zero_differential_mismatches_under_chaos(self, theory):
        report = run_conformance(
            theory,
            cases=10,
            seed=3,
            chaos=ChaosPolicy(seed=11, p=0.05),
        )
        assert report.ok, [f.discrepancy.describe() for f in report.failures]
        assert report.chaos_stats is not None
        assert report.chaos_stats["calls"] > 0

    def test_chaos_run_is_deterministic(self):
        def run():
            report = run_conformance(
                "equality", cases=4, seed=5, chaos=ChaosPolicy(seed=2, p=0.2)
            )
            return report.chaos_stats, dict(report.degraded), report.ok

        assert run() == run()

    def test_single_case_under_armed_runtime(self):
        runtime = ChaosRuntime(ChaosPolicy(seed=9, p=0.2))
        spec = generate_case("dense_order", 123)
        degraded = Counter()
        found = run_case(spec, runtime, None, degraded)
        assert found is None
        assert runtime.stats.calls > 0
