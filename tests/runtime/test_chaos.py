"""Tests for the seeded chaos/fault-injection harness (runtime/chaos.py)."""

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram
from repro.core.generalized import GeneralizedDatabase
from repro.errors import SpuriousUnsatError, TheoryError, TransientTheoryError
from repro.logic.parser import parse_rules
from repro.runtime.chaos import (
    ChaosPolicy,
    ChaosRuntime,
    ChaosTheory,
    ResilientTheory,
    chaos_scope,
    current_chaos,
    harden,
    parse_chaos_spec,
    unwrap_theory,
)


class TestChaosPolicy:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ChaosPolicy(p=1.5)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            ChaosPolicy(sites=("disk",))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            ChaosPolicy(faults=("bitflip",))

    def test_fairness_bound_must_fit_retry_budget(self):
        with pytest.raises(ValueError):
            ChaosPolicy(max_consecutive=5, max_retries=2)

    def test_spurious_unsat_is_a_transient(self):
        assert issubclass(SpuriousUnsatError, TransientTheoryError)
        assert issubclass(TransientTheoryError, TheoryError)


class TestChaosRuntime:
    def test_same_seed_same_stream(self):
        def stats_for(seed):
            runtime = ChaosRuntime(
                ChaosPolicy(seed=seed, p=0.5, faults=("transient",))
            )
            outcomes = []
            for _ in range(200):
                try:
                    runtime.fire("sat")
                    outcomes.append(0)
                except TransientTheoryError:
                    outcomes.append(1)
            return outcomes, runtime.stats.as_dict()

        assert stats_for(7) == stats_for(7)
        assert stats_for(7) != stats_for(8)

    def test_untargeted_site_never_fires(self):
        runtime = ChaosRuntime(ChaosPolicy(p=1.0, sites=("sat",)))
        runtime.fire("join")
        assert runtime.stats.calls == 0

    def test_fairness_bounds_consecutive_raises(self):
        policy = ChaosPolicy(
            p=1.0, faults=("transient",), max_consecutive=2, max_retries=3
        )
        runtime = ChaosRuntime(policy)
        longest = streak = 0
        for _ in range(500):
            try:
                runtime.fire("sat")
                streak = 0
            except TransientTheoryError:
                streak += 1
                longest = max(longest, streak)
        assert longest <= policy.max_consecutive
        assert runtime.stats.suppressed_by_fairness > 0


def _dense_db_and_theory(policy):
    theory = harden(DenseOrderTheory(), policy)
    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(6):
        edge.add_point([i, i + 1])
    edge.add_tuple([le(0, "x"), lt("x", "y"), le("y", 1)])
    return db, theory


class TestWrappers:
    def test_harden_layers_and_unwrap(self):
        inner = DenseOrderTheory()
        theory = harden(inner)
        assert isinstance(theory, ResilientTheory)
        assert isinstance(theory.inner, ChaosTheory)
        assert unwrap_theory(theory) is inner
        assert theory.name == inner.name
        # the cache object is shared so the engine's enable/disable works
        assert theory.cache is inner.cache

    def test_wrapper_inert_outside_scope(self):
        policy = ChaosPolicy(p=1.0, faults=("transient",))
        db, _theory = _dense_db_and_theory(policy)
        assert current_chaos() is None
        relation = db.relation("E")
        assert len(relation) == 7  # all adds succeeded, nothing injected

    def test_retry_recovers_under_scope(self):
        policy = ChaosPolicy(
            seed=5, p=0.3, faults=("transient", "spurious_unsat")
        )
        with chaos_scope(policy) as runtime:
            db, theory = _dense_db_and_theory(policy)
            relation = db.relation("E")
            assert len(relation) == 7
            assert theory.is_satisfiable([lt(0, "x"), lt("x", 1)])
        assert runtime.stats.total_injected > 0
        assert runtime.stats.retry_successes > 0

    def test_hard_fault_propagates(self):
        policy = ChaosPolicy(
            p=1.0, faults=("theory_error",), max_consecutive=1, max_retries=1
        )
        theory = harden(DenseOrderTheory(), policy)
        with chaos_scope(policy):
            with pytest.raises(TheoryError):
                theory.is_satisfiable([lt(0, "x")])

    def test_datalog_fixpoint_correct_under_chaos(self):
        """End-to-end: the engine's answer under chaos equals the clean one."""
        rules_text = """
        T(x, y) :- E(x, y).
        T(x, y) :- T(x, z), E(z, y).
        """
        clean_theory = DenseOrderTheory()
        clean_db = GeneralizedDatabase(clean_theory)
        edge = clean_db.create_relation("E", ("x", "y"))
        for i in range(5):
            edge.add_point([i, i + 1])
        clean_world, _ = DatalogProgram(
            parse_rules(rules_text, theory=clean_theory), clean_theory
        ).evaluate(clean_db)
        expected = {frozenset(t.atoms) for t in clean_world.relation("T")}

        policy = ChaosPolicy(seed=3, p=0.1)
        with chaos_scope(policy):
            theory = harden(DenseOrderTheory(), policy)
            db = GeneralizedDatabase(theory)
            edge = db.create_relation("E", ("x", "y"))
            for i in range(5):
                edge.add_point([i, i + 1])
            world, _ = DatalogProgram(
                parse_rules(rules_text, theory=unwrap_theory(theory)), theory
            ).evaluate(db)
        actual = {frozenset(t.atoms) for t in world.relation("T")}
        assert actual == expected


class TestParseChaosSpec:
    def test_defaults(self):
        policy = parse_chaos_spec([])
        assert policy.p == ChaosPolicy().p
        assert policy.seed == ChaosPolicy().seed

    def test_keys(self):
        policy = parse_chaos_spec("p=0.2 seed=9 latency=0.002 retries=5")
        assert policy.p == 0.2
        assert policy.seed == 9
        assert policy.latency_seconds == 0.002
        assert policy.max_retries == 5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("voltage=11")
