"""Tests for the Budget/BudgetMeter supervisor core (runtime/budget.py)."""

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.runtime.budget import (
    Budget,
    CancellationToken,
    active_meter,
    metered,
    parse_budget_spec,
    supervised,
    tick,
)


class TestBudget:
    def test_defaults_are_unlimited(self):
        budget = Budget()
        assert budget.as_dict() == {
            "deadline_seconds": None,
            "qe_steps": None,
            "rounds": None,
            "tuples": None,
            "joins": None,
            "qe_rung_steps": None,
            "partial_results": "raise",
        }

    def test_partial_results_validated(self):
        with pytest.raises(ValueError):
            Budget(partial_results="best-effort")

    def test_error_is_a_repro_error(self):
        assert issubclass(BudgetExceededError, ReproError)


class TestMeter:
    def test_tick_within_limit_is_silent(self):
        meter = Budget(rounds=3).start()
        for _ in range(3):
            meter.tick("round")

    def test_tick_over_limit_trips(self):
        meter = Budget(rounds=3).start()
        for _ in range(3):
            meter.tick("round")
        with pytest.raises(BudgetExceededError) as info:
            meter.tick("round")
        report = info.value.report
        assert report.budget_kind == "rounds"
        assert report.limit == 3
        assert report.used == 4
        assert report.scope == "global"
        assert report.counts["round"] == 4

    @pytest.mark.parametrize(
        "site,kind",
        [
            ("qe_step", "qe_steps"),
            ("tuple", "tuples"),
            ("join", "joins"),
        ],
    )
    def test_each_site_maps_to_its_limit(self, site, kind):
        meter = Budget(**{kind: 1}).start()
        meter.tick(site)
        with pytest.raises(BudgetExceededError) as info:
            meter.tick(site)
        assert info.value.report.budget_kind == kind

    def test_unlimited_sites_never_trip(self):
        meter = Budget(rounds=1).start()
        for _ in range(100):
            meter.tick("tuple")
        meter.tick("round")

    def test_amount_charges_in_bulk(self):
        meter = Budget(tuples=10).start()
        with pytest.raises(BudgetExceededError):
            meter.tick("tuple", amount=11)

    def test_deadline_trips_on_any_site(self):
        meter = Budget(deadline_seconds=0.0).start()
        with pytest.raises(BudgetExceededError) as info:
            meter.tick("sat")
        assert info.value.report.budget_kind == "deadline"

    def test_cancellation_token(self):
        token = CancellationToken()
        meter = Budget(token=token).start()
        meter.tick("round")
        token.cancel("client went away")
        with pytest.raises(BudgetExceededError) as info:
            meter.tick("round")
        report = info.value.report
        assert report.budget_kind == "cancelled"
        assert report.note == "client went away"

    def test_report_as_dict_drops_zero_counts(self):
        meter = Budget().start()
        meter.tick("round")
        payload = meter.report().as_dict()
        assert payload["counts"] == {"round": 1}
        assert payload["scope"] == "global"


class TestRungMeter:
    def test_rung_trip_has_qe_rung_scope(self):
        parent = Budget(qe_rung_steps=2).start()
        child = parent.rung_meter()
        child.tick("qe_step")
        child.tick("qe_step")
        with pytest.raises(BudgetExceededError) as info:
            child.tick("qe_step")
        assert info.value.report.scope == "qe_rung"
        # the rung's ticks were forwarded into the global meter
        assert parent.counts["qe_step"] == 3

    def test_global_limit_wins_inside_a_rung(self):
        parent = Budget(qe_steps=1, qe_rung_steps=100).start()
        child = parent.rung_meter()
        child.tick("qe_step")
        with pytest.raises(BudgetExceededError) as info:
            child.tick("qe_step")
        # the parent (global) cap trips first, with global scope
        assert info.value.report.scope == "global"


class TestAmbientMeter:
    def test_tick_without_meter_is_a_noop(self):
        assert active_meter() is None
        tick("round")  # must not raise

    def test_supervised_installs_and_restores(self):
        with supervised(Budget(rounds=1)) as meter:
            assert active_meter() is meter
            tick("round")
            with pytest.raises(BudgetExceededError):
                tick("round")
        assert active_meter() is None

    def test_supervised_none_inherits(self):
        with supervised(Budget(rounds=1)) as outer:
            with supervised(None) as inner:
                assert inner is outer

    def test_metered_installs_explicit_meter(self):
        meter = Budget(tuples=1).start()
        with metered(meter):
            tick("tuple")
            with pytest.raises(BudgetExceededError):
                tick("tuple")
        assert active_meter() is None


class TestParseBudgetSpec:
    def test_full_spec(self):
        budget = parse_budget_spec("deadline=0.05 rounds=10 qe=99 fringe")
        assert budget.deadline_seconds == 0.05
        assert budget.rounds == 10
        assert budget.qe_steps == 99
        assert budget.partial_results == "fringe"

    def test_token_list(self):
        budget = parse_budget_spec(["tuples=7", "joins=8", "rung=3"])
        assert budget.tuples == 7
        assert budget.joins == 8
        assert budget.qe_rung_steps == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_budget_spec("cycles=10")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            parse_budget_spec("rounds=ten")

    def test_bare_word_rejected(self):
        with pytest.raises(ValueError):
            parse_budget_spec("deadline")
