"""Sharded multi-process evaluation: determinism, supervision, recovery.

The determinism matrix replays the same program under the sharded executor
and the serial engine across all four constraint theories and all four
evaluation semantics (naive, semi-naive, inflationary, stratified) and
demands *byte-identical* fixpoints -- same tuples in the same insertion
order.  The robustness tests inject process-level faults (worker kills,
dropped and corrupted results, heartbeat stalls) and assert that recovery
never changes the answer; exhaustion degrades to the in-process path, and
worker-side budget trips surface as the ordinary tagged fringe.
"""

import pickle
import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.terms import BConst, BVar, BXor
from repro.constraints.boolean import BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.poly.polynomial import poly_var
from repro.core.datalog import DatalogProgram, EngineOptions, EvaluationStats
from repro.core.generalized import GeneralizedDatabase
from repro.errors import BudgetExceededError, ClusterError, WorkerCrashError
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget, ResourceReport
from repro.runtime.chaos import PROCESS_FAULTS, ProcessFaultPolicy
from repro.runtime.cluster import ClusterConfig, ShardTask
from repro.workloads.equalities import random_equality_database
from repro.workloads.orders import chain_edges

#: tiny pool tuned for the test matrix: two workers, every delta slice
#: shippable, even single-shard rounds routed through the pool
TINY = ClusterConfig(workers=2, min_slice=1, force=True)

#: transitive closure + a three-way join + stratified unreachability --
#: enough distinct tasks per round to genuinely shard, with negation so
#: the inflationary/stratified semantics are exercised for real
TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
S(x, w) :- E(x, y), T(y, z), E(z, w).
U(x, y) :- V(x), V(y), not T(x, y).
"""

#: (semi_naive, semantics) pairs: the four evaluation modes of the matrix
SEMANTICS = (
    (False, "auto"),  # naive
    (True, "auto"),  # semi-naive
    (True, "inflationary"),
    (True, "stratified"),
)


def _tc_database(theory, n, *, nodes=None):
    db = chain_edges(n)
    # chain_edges builds over its own DenseOrderTheory; rebuild over ours
    rebuilt = GeneralizedDatabase(theory)
    edge = rebuilt.create_relation("E", ("x", "y"))
    for item in db.relation("E"):
        edge.add(item)
    vertices = rebuilt.create_relation("V", ("x",))
    for v in nodes or range(1, min(n, 4)):
        vertices.add_point([v])
    return rebuilt


def _equality_tc_database(theory, count, seed):
    db = random_equality_database(count, seed=seed, domain=8, name="E")
    rebuilt = GeneralizedDatabase(theory)
    edge = rebuilt.create_relation("E", ("x", "y"))
    for item in db.relation("E"):
        edge.add(item)
    vertices = rebuilt.create_relation("V", ("x",))
    for v in range(3):
        vertices.add_point([v])
    return rebuilt


def _boolean_database(theory, seed):
    import random

    rng = random.Random(seed)
    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    from repro.boolean_algebra.terms import BNot, BZero

    elements = [BConst("c0"), BNot(BConst("c0")), BZero()]
    for _ in range(4):
        a, b = rng.choice(elements), rng.choice(elements)
        edge.add_tuple(
            [theory.zero_of(BXor(BVar("x"), a)), theory.zero_of(BXor(BVar("y"), b))]
        )
    vertices = db.create_relation("V", ("x",))
    vertices.add_tuple([theory.zero_of(BXor(BVar("x"), BConst("c0")))])
    return db


def _poly_database(theory, seed):
    import random

    rng = random.Random(seed)
    x, y = poly_var("x"), poly_var("y")
    from repro.constraints.real_poly import poly_eq, poly_le

    db = GeneralizedDatabase(theory)
    r = db.create_relation("R", ("x", "y"))
    for _ in range(3):
        a = rng.randrange(1, 4)
        b = rng.randrange(-2, 3)
        r.add_tuple([poly_eq(y, a * x + b)])
    r.add_tuple([poly_le(x * x, 4), poly_eq(y, 0)])
    return db


#: non-recursive program for the polynomial theory (recursion is refused
#: by the closure guard) -- three rules so a round still has several tasks
POLY_RULES = """
S(x) :- R(x, y), y = 0.
W(x, y) :- R(x, y), x <= 1.
Q(y) :- R(x, y), R(y, z).
"""


def _build(theory_name, seed):
    """(rules, theory, database, derived-relation-names) per theory."""
    if theory_name == "dense_order":
        theory = DenseOrderTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        return rules, theory, _tc_database(theory, 6 + seed % 5), ("T", "S", "U")
    if theory_name == "equality":
        theory = EqualityTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        return rules, theory, _equality_tc_database(theory, 5, seed), ("T", "S", "U")
    if theory_name == "boolean":
        # boolean constraints are not closed under negation (Section 5):
        # the boolean leg of the matrix stays positive Datalog
        theory = BooleanTheory(FreeBooleanAlgebra.with_generators(1))
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            B(x) :- E(x, y), E(y, x).
            """,
            theory=theory,
        )
        return rules, theory, _boolean_database(theory, seed), ("T", "B")
    theory = RealPolynomialTheory()
    rules = parse_rules(POLY_RULES, theory=theory)
    return rules, theory, _poly_database(theory, seed), ("S", "W", "Q")


def _evaluate(rules, theory, db, *, semi_naive, semantics, cluster=None, **kw):
    options = EngineOptions(**kw) if cluster is None else EngineOptions(
        sharded=True, cluster=cluster, **kw
    )
    program = DatalogProgram(rules, theory, options=options)
    return program.evaluate(db, semi_naive=semi_naive, semantics=semantics)


def _bytes(world, names):
    return {name: world.relation(name).tuples() for name in names}


class TestDeterminismMatrix:
    """Sharded == serial, byte for byte, across theories x semantics."""

    @pytest.mark.parametrize(
        "theory_name", ["dense_order", "equality", "boolean", "real_poly"]
    )
    @given(data=st.data())
    @settings(
        max_examples=2,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_sharded_matches_serial(self, theory_name, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        semi_naive, semantics = data.draw(st.sampled_from(SEMANTICS))
        rules, theory, db, names = _build(theory_name, seed)
        world_s, _ = _evaluate(
            rules, theory, db, semi_naive=semi_naive, semantics=semantics
        )
        rules2, theory2, db2, _names = _build(theory_name, seed)
        world_x, stats = _evaluate(
            rules2,
            theory2,
            db2,
            semi_naive=semi_naive,
            semantics=semantics,
            cluster=TINY,
        )
        assert _bytes(world_x, names) == _bytes(world_s, names)
        assert stats.shard_rounds > 0
        assert not stats.shard_fallback

    def test_counter_parity_with_serial(self):
        # shard-local meters merge back: join/firing totals match serial
        theory = DenseOrderTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        world_s, stats_s = _evaluate(
            rules, theory, _tc_database(theory, 10), semi_naive=True, semantics="auto"
        )
        world_x, stats_x = _evaluate(
            parse_rules(TC_RULES, theory=DenseOrderTheory()),
            DenseOrderTheory(),
            _tc_database(DenseOrderTheory(), 10),
            semi_naive=True,
            semantics="auto",
            cluster=TINY,
        )
        assert _bytes(world_x, ("T", "S", "U")) == _bytes(world_s, ("T", "S", "U"))
        assert stats_x.join_steps == stats_s.join_steps
        assert stats_x.rule_firings == stats_s.rule_firings

    def test_unforced_single_shard_rounds_stay_in_process(self):
        # one rule + tiny deltas: every round is a single shard, and an
        # unforced pool declines it -- in-process path, no fallback tag
        # (declining is placement, not degradation)
        theory = DenseOrderTheory()
        cfg = ClusterConfig(workers=2, min_slice=10_000, force=False)
        single = "T(x, y) :- E(x, y)."
        world, stats = _evaluate(
            parse_rules(single, theory=theory),
            theory,
            _tc_database(theory, 6),
            semi_naive=True,
            semantics="auto",
            cluster=cfg,
        )
        reference, _ = _evaluate(
            parse_rules(single, theory=DenseOrderTheory()),
            DenseOrderTheory(),
            _tc_database(DenseOrderTheory(), 6),
            semi_naive=True,
            semantics="auto",
        )
        assert stats.shard_rounds == 0
        assert not stats.shard_fallback
        assert _bytes(world, ("T",)) == _bytes(reference, ("T",))


@pytest.mark.chaos
class TestProcessFaults:
    def _run_with_faults(self, faults, n=8, **cfg_kw):
        theory = DenseOrderTheory()
        knobs = dict(
            workers=2,
            min_slice=1,
            force=True,
            max_restarts=10,
            max_task_retries=4,
            backoff_base_seconds=0.001,
            faults=faults,
        )
        knobs.update(cfg_kw)
        cfg = ClusterConfig(**knobs)
        rules = parse_rules(TC_RULES, theory=theory)
        world, stats = _evaluate(
            rules,
            theory,
            _tc_database(theory, n),
            semi_naive=True,
            semantics="auto",
            cluster=cfg,
        )
        reference, _ = _evaluate(
            parse_rules(TC_RULES, theory=DenseOrderTheory()),
            DenseOrderTheory(),
            _tc_database(DenseOrderTheory(), n),
            semi_naive=True,
            semantics="auto",
        )
        assert _bytes(world, ("T", "S", "U")) == _bytes(reference, ("T", "S", "U"))
        return stats

    def test_worker_kill_recovers_identically(self):
        stats = self._run_with_faults(
            ProcessFaultPolicy(p=0.2, seed=7, faults=("worker_kill",))
        )
        assert stats.worker_restarts > 0
        assert stats.shard_redispatches > 0
        assert not stats.shard_fallback

    def test_dropped_and_corrupt_results_redispatched(self):
        stats = self._run_with_faults(
            ProcessFaultPolicy(
                p=0.25, seed=3, faults=("drop_result", "corrupt_result")
            ),
            # dropped results only resurface via the straggler clock; keep
            # it above single-core scheduling jitter so healthy shards are
            # not speculated into retry exhaustion
            straggler_timeout=1.0,
            max_task_retries=6,
        )
        assert stats.shard_redispatches > 0
        assert not stats.shard_fallback

    def test_heartbeat_stall_triggers_speculation(self):
        stats = self._run_with_faults(
            ProcessFaultPolicy(
                p=0.2, seed=5, faults=("heartbeat_stall",), stall_seconds=1.5
            ),
            n=6,
            straggler_timeout=0.5,
            liveness_timeout=10.0,
        )
        # first-valid-wins: stalled originals may still land after the
        # speculative copy; either way the fixpoint above is identical
        assert stats.shard_redispatches > 0

    def test_exhaustion_degrades_without_error(self):
        stats = self._run_with_faults(
            ProcessFaultPolicy(p=1.0, seed=1, faults=("worker_kill",)),
            n=6,
            max_restarts=0,
        )
        assert stats.shard_fallback == "in-process"
        assert stats.cluster is not None
        assert stats.cluster["degraded"]


class TestWorkerBudgets:
    def test_worker_budget_trip_yields_tagged_fringe(self):
        theory = DenseOrderTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        world, stats = _evaluate(
            rules,
            theory,
            _tc_database(theory, 10),
            semi_naive=True,
            semantics="auto",
            cluster=TINY,
            budget=Budget(joins=60, partial_results="fringe"),
        )
        assert stats.incomplete
        assert stats.budget["budget_kind"] == "joins"
        full, _ = _evaluate(
            parse_rules(TC_RULES, theory=DenseOrderTheory()),
            DenseOrderTheory(),
            _tc_database(DenseOrderTheory(), 10),
            semi_naive=True,
            semantics="auto",
        )
        for name in ("T", "S"):
            fringe = {t.atoms for t in world.relation(name)}
            fixpoint = {t.atoms for t in full.relation(name)}
            assert fringe <= fixpoint

    def test_worker_budget_trip_raises_when_asked(self):
        theory = DenseOrderTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        with pytest.raises(BudgetExceededError) as excinfo:
            _evaluate(
                rules,
                theory,
                _tc_database(theory, 10),
                semi_naive=True,
                semantics="auto",
                cluster=TINY,
                budget=Budget(joins=60),
            )
        assert excinfo.value.report.budget_kind == "joins"

    @given(
        limit=st.integers(min_value=1, max_value=50),
        parts=st.integers(min_value=1, max_value=6),
        spent=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_leases_never_over_grant(self, limit, parts, spent):
        meter = Budget(joins=limit, partial_results="raise").start()
        for _ in range(min(spent, limit)):
            meter.tick("join")
        remaining = limit - meter.counts.get("join", 0)
        leases = meter.split_leases(parts)
        assert len(leases) == parts
        assert all(lease.joins == remaining // parts for lease in leases)
        # workers burn their entire lease; the settled sum fits the parent
        settled = []
        for lease in leases:
            child = lease.start()
            try:
                for _ in range(lease.joins + 5):
                    child.tick("join")
            except BudgetExceededError:
                pass
            counts = child.settled_counts()
            assert counts.get("join", 0) <= lease.joins
            settled.append(counts)
        assert sum(c.get("join", 0) for c in settled) <= remaining
        for counts in settled:
            meter.absorb(counts)  # never trips: leases cannot over-grant

    def test_rounds_excluded_from_leases(self):
        meter = Budget(rounds=3, joins=10).start()
        (lease,) = meter.split_leases(1)
        assert lease.rounds is None
        assert lease.joins == 10


class TestPolicyDeterminism:
    def test_decisions_are_deterministic(self):
        policy = ProcessFaultPolicy(p=0.5, seed=9)
        first = [policy.decide(r, s, 0) for r in range(6) for s in range(6)]
        second = [policy.decide(r, s, 0) for r in range(6) for s in range(6)]
        assert first == second
        assert any(f is not None for f in first)

    def test_fairness_bound_suppresses_retried_tasks(self):
        policy = ProcessFaultPolicy(p=1.0, seed=0, max_consecutive=2)
        assert policy.decide(1, 1, 0) in PROCESS_FAULTS
        assert policy.decide(1, 1, 2) is None
        assert policy.decide(1, 1, 5) is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ProcessFaultPolicy(p=1.5)
        with pytest.raises(ValueError):
            ProcessFaultPolicy(faults=("bad_fault",))

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(workers=-1)
        with pytest.raises(ValueError):
            ClusterConfig(max_task_retries=0)
        with pytest.raises(ValueError):
            ClusterConfig(
                max_task_retries=1,
                faults=ProcessFaultPolicy(max_consecutive=2),
            )

    def test_worker_crash_error_carries_lineage(self):
        error = WorkerCrashError("w1 exhausted", worker_id=1, restarts=3)
        assert isinstance(error, ClusterError)
        assert error.worker_id == 1
        assert error.restarts == 3


class TestWireFormat:
    def test_resource_report_pickle_round_trip(self):
        report = ResourceReport(
            budget_kind="joins",
            limit=10,
            used=11,
            elapsed_seconds=0.5,
            counts={"join": 11},
            scope="shard",
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.as_dict() == report.as_dict()

    def test_evaluation_stats_pickle_round_trip(self):
        stats = EvaluationStats(
            iterations=3,
            join_steps=17,
            shard_rounds=2,
            shard_tasks=9,
            shard_redispatches=1,
            worker_restarts=1,
            shard_fallback="in-process",
            cluster={"workers": 2, "degraded": True},
        )
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()

    def test_shard_task_pickle_round_trip(self):
        task = ShardTask(
            round_id=4,
            shard_id=1,
            attempt=0,
            fingerprint=("T(x, y) :- E(x, y).",),
            rule_index=0,
            delta_position=0,
            start=0,
            stop=8,
            lease=Budget(joins=5),
            chaos=None,
            fault=None,
            stall_seconds=0.0,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task

    def test_compiled_rules_refuse_to_pickle(self):
        from repro.core.compile import CompiledProgram

        theory = DenseOrderTheory()
        program = DatalogProgram(
            parse_rules("T(x, y) :- E(x, y).", theory=theory), theory
        )
        compiled = CompiledProgram(program)
        with pytest.raises(TypeError, match="fingerprint"):
            pickle.dumps(compiled)
        with pytest.raises(TypeError, match="fingerprint"):
            pickle.dumps(compiled.compiled_for(program.rules[0]))


class TestStatsMerge:
    def test_shard_counters_are_additive(self):
        a = EvaluationStats(shard_rounds=1, shard_tasks=4, worker_restarts=1)
        b = EvaluationStats(
            shard_rounds=2, shard_tasks=3, shard_redispatches=2, worker_restarts=1
        )
        a.merge(b)
        assert a.shard_rounds == 3
        assert a.shard_tasks == 7
        assert a.shard_redispatches == 2
        assert a.worker_restarts == 2

    def test_fallback_tag_survives_as_dict(self):
        stats = EvaluationStats(shard_fallback="in-process")
        assert stats.as_dict()["shard_fallback"] == "in-process"
