"""Property tests: compiled closures never change a fixpoint.

The compiler's contract is stronger than "same answers": a compiled rule
enumerates exactly the candidate entries the interpreted join enumerates,
in the same order, under the same plan -- the fast paths only change *how*
each per-entry decision is computed.  These tests check the observable
half of that contract across all four theories and all four semantics
(naive and semi-naive iteration under auto, stratified, and inflationary
policies), and the stronger half via the shared counters: identical
``join_steps`` and ``tuples_derived`` between the two engines, and
identical sound under-approximations when a fringe budget trips.
"""

import random
from dataclasses import replace
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget

POSITIVE_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

NEGATION_RULES = POSITIVE_RULES + """
U(x, y) :- V(x), V(y), not T(x, y).
"""

SEMANTICS = ("auto", "stratified", "inflationary")

COMPILED = EngineOptions.all_on()
INTERPRETED = replace(EngineOptions.all_on(), compile_rules=False)


def _random_dense_db(theory, rng, size):
    db = GeneralizedDatabase(theory)
    edges = db.create_relation("E", ("x", "y"))
    nodes = max(2, size)
    for _ in range(size + 1):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a == b:
            continue
        edges.add_point([a, b])
    if rng.random() < 0.5:
        # a non-point tuple forces the general (context-building) path
        lo = rng.randrange(nodes)
        edges.add_tuple(
            [
                theory.le(Fraction(lo), "x"),
                theory.lt("x", "y"),
                theory.le("y", Fraction(lo + 1)),
            ]
        )
    vertices = db.create_relation("V", ("x",))
    for v in range(min(nodes, 4)):
        vertices.add_point([v])
    return db


def _random_equality_db(theory, rng, size):
    db = GeneralizedDatabase(theory)
    edges = db.create_relation("E", ("x", "y"))
    nodes = max(2, size)
    for _ in range(size + 1):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a == b:
            continue
        edges.add_point([a, b])
    if rng.random() < 0.5:
        edges.add_tuple([theory.eq("x", theory.const(0)), theory.ne("x", "y")])
    vertices = db.create_relation("V", ("x",))
    for v in range(min(nodes, 4)):
        vertices.add_point([v])
    return db


def _fingerprint(world, names):
    return {
        name: frozenset(frozenset(t.atoms) for t in world.relation(name))
        for name in names
    }


def _assert_compiled_equivalent(make_theory, make_db, seed, size):
    rng = random.Random(seed)
    for rules_text, names in (
        (POSITIVE_RULES, ("T",)),
        (NEGATION_RULES, ("T", "U")),
    ):
        layout_seed = rng.randrange(1 << 30)
        for semantics in SEMANTICS:
            for semi_naive in (True, False):
                results = []
                counters = []
                for options in (COMPILED, INTERPRETED):
                    theory = make_theory()
                    db = make_db(theory, random.Random(layout_seed), size)
                    program = DatalogProgram(
                        parse_rules(rules_text, theory=theory),
                        theory,
                        options=options,
                    )
                    world, stats = program.evaluate(
                        db, semi_naive=semi_naive, semantics=semantics
                    )
                    results.append(_fingerprint(world, names))
                    counters.append((stats.join_steps, stats.tuples_derived))
                label = (
                    f"(semantics={semantics}, semi_naive={semi_naive}, "
                    f"seed={seed})"
                )
                assert results[0] == results[1], (
                    f"compilation changed the fixpoint {label}"
                )
                # the step-for-step contract: same entries enumerated,
                # same tuples derived
                assert counters[0] == counters[1], (
                    f"compilation changed the join/derive counts {label}"
                )


class TestCompiledEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_dense_order_programs(self, seed, size):
        _assert_compiled_equivalent(
            DenseOrderTheory, _random_dense_db, seed, size
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_equality_programs(self, seed, size):
        _assert_compiled_equivalent(
            EqualityTheory, _random_equality_db, seed, size
        )


class TestFourTheoryMatrix:
    """Compiled vs interpreted over conformance-generated cases.

    Covers all four theories (dense order, equality, boolean, real
    polynomial) under both fixpoint orders and the generated case's own
    semantics, including the theories the compiler forces onto the
    general (non-pointwise) path.
    """

    @staticmethod
    def _datalog_spec(theory_name, seed):
        from repro.conformance.generators import generate_case

        for probe in range(25):
            spec = generate_case(theory_name, seed + probe)
            if spec.kind == "datalog":
                return spec
        return None

    def _assert_matrix(self, theory_name, seed):
        from repro.conformance.spec import build_case

        spec = self._datalog_spec(theory_name, seed)
        if spec is None:
            return
        fingerprints = set()
        for options in (COMPILED, INTERPRETED):
            for semi_naive in (True, False):
                case = build_case(spec)
                program = DatalogProgram(
                    case.rules, case.theory, options=options
                )
                world, _stats = program.evaluate(
                    case.database,
                    semi_naive=semi_naive,
                    semantics=spec.semantics,
                )
                fingerprints.add(
                    frozenset(
                        frozenset(t.atoms)
                        for t in world.relation(spec.target)
                    )
                )
        assert len(fingerprints) == 1, (
            f"{theory_name} fixpoint depends on compile_rules (seed={seed}, "
            f"{len(fingerprints)} distinct answers)"
        )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dense_order(self, seed):
        self._assert_matrix("dense_order", seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equality(self, seed):
        self._assert_matrix("equality", seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_boolean(self, seed):
        self._assert_matrix("boolean", seed)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_real_poly(self, seed):
        self._assert_matrix("real_poly", seed)


class TestBudgetedEquivalence:
    """Fringe degradation under budgets is identical compiled vs not."""

    def _chain_db(self, theory, n):
        db = GeneralizedDatabase(theory)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(n):
            edge.add_point([i, i + 1])
        return db

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 40), st.integers(8, 20))
    def test_fringe_partial_results_match(self, joins, size):
        budget = Budget(joins=joins, partial_results="fringe")
        worlds = []
        for base in (COMPILED, INTERPRETED):
            theory = DenseOrderTheory()
            options = replace(base, budget=budget)
            program = DatalogProgram(
                parse_rules(POSITIVE_RULES, theory=theory),
                theory,
                options=options,
            )
            world, stats = program.evaluate(self._chain_db(theory, size))
            worlds.append(_fingerprint(world, ("T",)))
        # same ticks -> the budget trips at the same point -> the sound
        # under-approximations are the same set of tuples
        assert worlds[0] == worlds[1]
