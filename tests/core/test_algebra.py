"""Tests for the generalized relational algebra (Section 2.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt
from repro.core.algebra import (
    complement,
    difference,
    join,
    project,
    rename,
    select,
    union,
)
from repro.core.generalized import GeneralizedRelation
from repro.errors import ArityError

order = DenseOrderTheory()


def interval_rel(name, *bounds, var="x"):
    relation = GeneralizedRelation(name, (var,), order)
    for low, high in bounds:
        relation.add_tuple([le(low, var), le(var, high)])
    return relation


class TestSelect:
    def test_conjoins(self):
        r = interval_rel("R", (0, 10))
        result = select(r, [lt(5, "x")])
        assert result.contains_values([Fraction(7)])
        assert not result.contains_values([Fraction(3)])

    def test_prunes_unsat(self):
        r = interval_rel("R", (0, 1), (5, 6))
        result = select(r, [lt(4, "x")])
        assert len(result) == 1

    def test_out_of_scope_rejected(self):
        r = interval_rel("R", (0, 1))
        with pytest.raises(ArityError):
            select(r, [lt("y", 1)])


class TestProject:
    def test_quantifier_elimination(self):
        r = GeneralizedRelation("R", ("x", "y"), order)
        r.add_tuple([lt("x", "y"), lt("y", 5)])
        result = project(r, ["x"])
        assert result.contains_values([Fraction(4)])
        assert not result.contains_values([Fraction(5)])

    def test_reorder(self):
        r = GeneralizedRelation("R", ("x", "y"), order)
        r.add_tuple([eq("x", 1), eq("y", 2)])
        result = project(r, ["y", "x"])
        assert result.variables == ("y", "x")
        assert result.contains_point({"x": Fraction(1), "y": Fraction(2)})

    def test_unknown_attribute(self):
        r = interval_rel("R", (0, 1))
        with pytest.raises(ArityError):
            project(r, ["z"])


class TestJoinUnionRename:
    def test_natural_join_on_shared(self):
        r = GeneralizedRelation("R", ("x", "y"), order)
        r.add_tuple([lt("x", "y")])
        s = GeneralizedRelation("S", ("y", "z"), order)
        s.add_tuple([lt("y", "z")])
        result = join(r, s)
        assert result.variables == ("x", "y", "z")
        assert result.contains_point(
            {"x": Fraction(0), "y": Fraction(1), "z": Fraction(2)}
        )
        assert not result.contains_point(
            {"x": Fraction(0), "y": Fraction(1), "z": Fraction(0)}
        )

    def test_join_prunes_unsat(self):
        r = interval_rel("R", (0, 1))
        s = interval_rel("S", (5, 6))
        assert len(join(r, s)) == 0

    def test_union(self):
        result = union(interval_rel("R", (0, 1)), interval_rel("S", (5, 6)))
        assert result.contains_values([Fraction(1, 2)])
        assert result.contains_values([Fraction(11, 2)])

    def test_union_schema_mismatch(self):
        r = interval_rel("R", (0, 1))
        s = interval_rel("S", (0, 1), var="y")
        with pytest.raises(ArityError):
            union(r, s)

    def test_rename(self):
        r = interval_rel("R", (0, 1))
        renamed = rename(r, {"x": "t"})
        assert renamed.variables == ("t",)
        assert renamed.contains_point({"t": Fraction(1, 2)})


class TestComplementDifference:
    def test_complement(self):
        r = interval_rel("R", (0, 1))
        result = complement(r)
        assert result.contains_values([Fraction(2)])
        assert not result.contains_values([Fraction(1, 2)])
        assert not result.contains_values([Fraction(0)])  # boundary in R

    def test_double_complement(self):
        r = interval_rel("R", (0, 1), (5, 6))
        back = complement(complement(r))
        for value in [Fraction(v, 2) for v in range(-2, 16)]:
            assert back.contains_values([value]) == r.contains_values([value])

    def test_difference(self):
        r = interval_rel("R", (0, 10))
        s = interval_rel("S", (3, 5))
        result = difference(r, s)
        assert result.contains_values([Fraction(1)])
        assert result.contains_values([Fraction(7)])
        assert not result.contains_values([Fraction(4)])


class TestAlgebraicLaws:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), max_size=3),
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), max_size=3),
    )
    def test_de_morgan(self, spans_a, spans_b):
        a = interval_rel("A", *[(lo, lo + w) for lo, w in spans_a])
        b = interval_rel("B", *[(lo, lo + w) for lo, w in spans_b])
        lhs = complement(union(a, b))
        rhs = join(complement(a), rename(complement(b), {}))
        for value in [Fraction(v, 2) for v in range(-2, 28)]:
            assert lhs.contains_values([value]) == rhs.contains_values([value])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), max_size=3))
    def test_select_project_commute_when_disjoint(self, spans):
        r = GeneralizedRelation("R", ("x", "y"), order)
        for lo, w in spans:
            r.add_tuple([le(lo, "x"), le("x", lo + w), lt("y", "x")])
        sel_then_proj = project(select(r, [lt(2, "x")]), ["x"])
        proj_then_sel = select(project(r, ["x"]), [lt(2, "x")])
        for value in [Fraction(v, 2) for v in range(-2, 28)]:
            assert sel_then_proj.contains_values([value]) == proj_then_sel.contains_values(
                [value]
            )
