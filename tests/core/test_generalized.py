"""Tests for generalized tuples, relations and databases (Definitions 1.3/1.4)."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt, ne
from repro.constraints.equality import EqualityTheory
from repro.constraints.equality import eq as eeq
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.errors import ArityError, UnknownRelationError

order = DenseOrderTheory()


class TestGeneralizedTuple:
    def test_scope_enforced(self):
        with pytest.raises(ArityError):
            GeneralizedTuple(("x",), (lt("x", "y"),))

    def test_rename(self):
        t = GeneralizedTuple(("x", "y"), (lt("x", "y"),))
        renamed = t.rename(("a", "b"))
        assert renamed.variables == ("a", "b")
        assert renamed.atoms == (lt("a", "b"),)

    def test_rename_arity_mismatch(self):
        t = GeneralizedTuple(("x",), (lt("x", 1),))
        with pytest.raises(ArityError):
            t.rename(("a", "b"))

    def test_holds(self):
        t = GeneralizedTuple(("x", "y"), (lt("x", "y"), lt(0, "x")))
        assert t.holds({"x": Fraction(1), "y": Fraction(2)})
        assert not t.holds({"x": Fraction(2), "y": Fraction(1)})


class TestGeneralizedRelation:
    def test_infinite_set_membership(self):
        r = GeneralizedRelation("R", ("x", "y"), order)
        r.add_tuple([lt("x", "y")])
        assert r.contains_values([Fraction(0), Fraction(1)])
        assert not r.contains_values([Fraction(1), Fraction(0)])

    def test_dedup_by_canonical_form(self):
        r = GeneralizedRelation("R", ("x", "y"), order)
        assert r.add_tuple([le("x", "y"), ne("x", "y")])
        # equivalent constraint: same canonical form, not added again
        assert not r.add_tuple([lt("x", "y")])
        assert len(r) == 1

    def test_unsat_tuple_dropped(self):
        r = GeneralizedRelation("R", ("x",), order)
        assert not r.add_tuple([lt("x", 0), lt(1, "x")])
        assert len(r) == 0

    def test_classical_points(self):
        # Example 1.5: the relational model is the equality special case
        r = GeneralizedRelation("r", ("x", "y"), order)
        r.add_point([1, 2])
        r.add_point([3, 4])
        assert len(r) == 2
        assert r.contains_values([Fraction(1), Fraction(2)])
        assert not r.contains_values([Fraction(1), Fraction(4)])

    def test_add_point_arity(self):
        r = GeneralizedRelation("r", ("x",), order)
        with pytest.raises(ArityError):
            r.add_point([1, 2])

    def test_constants(self):
        r = GeneralizedRelation("R", ("x",), order)
        r.add_tuple([lt(0, "x"), lt("x", 5)])
        assert r.constants() == {Fraction(0), Fraction(5)}

    def test_discard(self):
        r = GeneralizedRelation("R", ("x",), order)
        r.add_tuple([lt(0, "x")])
        t = GeneralizedTuple(("x",), (lt(0, "x"),))
        assert r.discard(t)
        assert len(r) == 0
        assert not r.discard(t)

    def test_sample_points(self):
        r = GeneralizedRelation("R", ("x",), order)
        r.add_tuple([lt(0, "x"), lt("x", 1)])
        r.add_tuple([eq("x", 5)])
        points = r.sample_points()
        assert len(points) == 2
        assert all(r.contains_point(p) for p in points)

    def test_variable_rename_on_add(self):
        r = GeneralizedRelation("R", ("a", "b"), order)
        r.add(GeneralizedTuple(("x", "y"), (lt("x", "y"),)))
        assert r.contains_values([Fraction(0), Fraction(1)])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ArityError):
            GeneralizedRelation("R", ("x", "x"), order)

    def test_works_with_equality_theory(self):
        eqt = EqualityTheory()
        r = GeneralizedRelation("R", ("x", "y"), eqt)
        r.add_tuple([eeq("x", "y")])
        assert r.contains_values([7, 7])
        assert not r.contains_values([7, 8])


class TestGeneralizedDatabase:
    def test_create_and_lookup(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x",))
        assert db.relation("R") is r
        assert "R" in db
        with pytest.raises(UnknownRelationError):
            db.relation("S")

    def test_duplicate_name_rejected(self):
        db = GeneralizedDatabase(order)
        db.create_relation("R", ("x",))
        with pytest.raises(ArityError):
            db.create_relation("R", ("y",))

    def test_copy_is_deep_for_tuples(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x",))
        r.add_tuple([lt(0, "x")])
        clone = db.copy()
        clone.relation("R").add_tuple([lt("x", 0)])
        assert len(db.relation("R")) == 1
        assert len(clone.relation("R")) == 2

    def test_constants_union(self):
        db = GeneralizedDatabase(order)
        db.create_relation("R", ("x",)).add_tuple([lt(0, "x")])
        db.create_relation("S", ("y",)).add_tuple([eq("y", 7)])
        assert db.constants() == {Fraction(0), Fraction(7)}
