"""Tests for selection propagation / join ordering / quantifier pushing."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.calculus import evaluate_calculus
from repro.core.generalized import GeneralizedDatabase
from repro.core.optimize import optimize
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    Not,
    Or,
    RelationAtom,
    free_variables,
)

order = DenseOrderTheory()


def make_db(big=30, small=2):
    db = GeneralizedDatabase(order)
    big_rel = db.create_relation("Big", ("x", "y"))
    for i in range(big):
        big_rel.add_point([i, i + 1])
    small_rel = db.create_relation("Small", ("x",))
    for i in range(small):
        small_rel.add_point([10 * i])
    return db


class TestReordering:
    def test_constraints_first(self):
        db = make_db()
        formula = And(
            (RelationAtom("Big", ("x", "y")), lt("x", 3), RelationAtom("Small", ("x",)))
        )
        rewritten = optimize(formula, db)
        assert isinstance(rewritten, And)
        kinds = [type(c).__name__ for c in rewritten.children]
        # the constraint atom leads, then the smaller relation, then Big
        assert isinstance(rewritten.children[0], Atom)
        assert rewritten.children[1] == RelationAtom("Small", ("x",))
        assert rewritten.children[2] == RelationAtom("Big", ("x", "y"))

    def test_negation_last(self):
        db = make_db()
        formula = And(
            (Not(RelationAtom("Big", ("x", "y"))), RelationAtom("Small", ("x",)), lt("y", 9))
        )
        rewritten = optimize(formula, db)
        assert isinstance(rewritten.children[-1], Not)


class TestQuantifierPushing:
    def test_exists_over_or(self):
        formula = Exists(
            ("w",),
            Or((RelationAtom("Small", ("w",)), RelationAtom("Big", ("w", "x")))),
        )
        rewritten = optimize(formula, make_db())
        assert isinstance(rewritten, Or)
        assert all(isinstance(c, Exists) for c in rewritten.children)

    def test_exists_split_from_free_conjuncts(self):
        formula = Exists(
            ("w",),
            And((RelationAtom("Small", ("x",)), RelationAtom("Big", ("w", "x")))),
        )
        rewritten = optimize(formula, make_db())
        assert isinstance(rewritten, And)
        # the x-only conjunct escaped the quantifier
        exists_parts = [c for c in rewritten.children if isinstance(c, Exists)]
        assert len(exists_parts) == 1
        assert free_variables(rewritten) == {"x"}

    def test_vacuous_exists_dropped(self):
        formula = Exists(("w",), RelationAtom("Small", ("x",)))
        rewritten = optimize(formula, make_db())
        assert not isinstance(rewritten, Exists)


@st.composite
def random_formula(draw):
    kind = draw(st.integers(0, 4))
    c = draw(st.integers(0, 20))
    if kind == 0:
        return And(
            (RelationAtom("Big", ("x", "y")), lt("x", c), RelationAtom("Small", ("x",)))
        )
    if kind == 1:
        return Exists(
            ("w",),
            And((RelationAtom("Big", ("x", "w")), le("w", c))),
        )
    if kind == 2:
        return Exists(
            ("w",),
            Or((RelationAtom("Big", ("w", "x")), RelationAtom("Big", ("x", "w")))),
        )
    if kind == 3:
        return And(
            (Not(RelationAtom("Small", ("x",))), RelationAtom("Big", ("x", "y")))
        )
    return Exists(
        ("w",),
        And(
            (
                RelationAtom("Small", ("x",)),
                RelationAtom("Big", ("w", "y")),
                lt("x", "y"),
            )
        ),
    )


class TestSemanticsPreserved:
    @settings(max_examples=30, deadline=None)
    @given(random_formula())
    def test_optimized_equals_original(self, formula):
        db = make_db(big=8, small=2)
        baseline = evaluate_calculus(formula, db)
        rewritten = optimize(formula, db)
        assert free_variables(rewritten) == free_variables(formula)
        optimized = evaluate_calculus(
            rewritten, db, output=baseline.variables
        )
        probes = [Fraction(v) for v in range(-1, 12)]
        if len(baseline.variables) == 1:
            for value in probes:
                assert baseline.contains_values([value]) == optimized.contains_values(
                    [value]
                ), (formula, value)
        else:
            for a in probes[::2]:
                for b in probes[::2]:
                    point = dict(zip(baseline.variables, (a, b)))
                    assert baseline.contains_point(point) == optimized.contains_point(
                        point
                    ), (formula, point)
