"""Tests for Datalog + constraints and inflationary Datalog-not."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.constraints.equality import EqualityTheory
from repro.constraints.equality import ne as ene
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase
from repro.errors import (
    EvaluationError,
    FixpointDivergenceError,
    NotClosedError,
)
from repro.logic.parser import parse_rules
from repro.logic.syntax import Not, RelationAtom
from repro.poly.polynomial import poly_var

order = DenseOrderTheory()


class TestRuleValidation:
    def test_head_vars_must_occur(self):
        with pytest.raises(EvaluationError):
            Rule(RelationAtom("S", ("x", "y")), (RelationAtom("R", ("x",)),))

    def test_head_vars_in_constraints_ok(self):
        rule = Rule(
            RelationAtom("S", ("x", "y")),
            (RelationAtom("R", ("x",)), lt("x", "y")),
        )
        assert rule.constraint_atoms == [lt("x", "y")]

    def test_predicates(self):
        rules = parse_rules("S(x, y) :- R(x, z), S(z, y).", theory=order)
        program = DatalogProgram(rules, order)
        assert program.idb_predicates() == {"S"}
        assert program.edb_predicates() == {"R"}
        assert program.is_recursive()

    def test_nonrecursive(self):
        rules = parse_rules("S(x) :- R(x, y).", theory=order)
        assert not DatalogProgram(rules, order).is_recursive()


class TestTransitiveClosure:
    """Example 1.11 shape: recursive rules over dense order."""

    def _edges_db(self):
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        edge.add_point([1, 2])
        edge.add_point([2, 3])
        edge.add_point([3, 4])
        return db

    def test_points_closure(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=order,
        )
        program = DatalogProgram(rules, order)
        world, stats = program.evaluate(self._edges_db())
        t = world.relation("T")
        assert t.contains_values([Fraction(1), Fraction(4)])
        assert t.contains_values([Fraction(2), Fraction(3)])
        assert not t.contains_values([Fraction(4), Fraction(1)])
        assert stats.iterations >= 3

    def test_interval_closure_terminates(self):
        # edges from every x in [0,1] to every y in [x, x] shifted intervals
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        edge.add_tuple([le(0, "x"), lt("x", "y"), le("y", 1)])
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=order,
        )
        program = DatalogProgram(rules, order)
        world, stats = program.evaluate(db)
        t = world.relation("T")
        assert t.contains_values([Fraction(0), Fraction(1)])
        assert not t.contains_values([Fraction(1), Fraction(0)])

    def test_naive_and_semi_naive_agree(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=order,
        )
        db = self._edges_db()
        world_naive, _ = DatalogProgram(rules, order).evaluate(db, semi_naive=False)
        world_semi, _ = DatalogProgram(rules, order).evaluate(db, semi_naive=True)
        naive_keys = {t.atom_set() for t in world_naive.relation("T")}
        semi_keys = {t.atom_set() for t in world_semi.relation("T")}
        assert naive_keys == semi_keys

    def test_example_111_constraint_rule(self):
        # Example 1.11: R(x,y) :- R(x,z), R0(z,y), x < y, y < z
        db = GeneralizedDatabase(order)
        r0 = db.create_relation("R0", ("x", "y"))
        r0.add_point([1, 5])
        r0.add_point([5, 3])
        rules = parse_rules(
            """
            R(x, y) :- R0(x, y).
            R(x, y) :- R(x, z), R0(z, y), x < y, y < z.
            """,
            theory=order,
        )
        world, _ = DatalogProgram(rules, order).evaluate(db)
        r = world.relation("R")
        # base tuples present
        assert r.contains_values([Fraction(1), Fraction(5)])
        # derived: R(1,5), R0(5,3), 1 < 3, 3 < 5 -> R(1,3)
        assert r.contains_values([Fraction(1), Fraction(3)])


class TestEqualityDatalog:
    def test_same_generation_style(self):
        eqt = EqualityTheory()
        db = GeneralizedDatabase(eqt)
        edge = db.create_relation("E", ("x", "y"))
        edge.add_point(["a", "b"])
        edge.add_point(["b", "c"])
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=eqt,
        )
        world, _ = DatalogProgram(rules, eqt).evaluate(db)
        assert world.relation("T").contains_values(["a", "c"])

    def test_infinite_relation_in_fixpoint(self):
        # facts carrying disequality constraints flow through recursion
        eqt = EqualityTheory()
        db = GeneralizedDatabase(eqt)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([ene("x", "y")])
        rules = parse_rules("S(x) :- R(x, y), y = 1.", theory=eqt)
        world, _ = DatalogProgram(rules, eqt).evaluate(db)
        s = world.relation("S")
        assert s.contains_values([0])
        assert s.contains_values([2])
        assert not s.contains_values([1])


class TestInflationaryNegation:
    def test_complement_via_negation(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x",))
        r.add_tuple([le(0, "x"), le("x", 1)])
        base = db.create_relation("U", ("x",))
        base.add_tuple([le(-10, "x"), le("x", 10)])
        rules = [
            Rule(
                RelationAtom("S", ("x",)),
                (RelationAtom("U", ("x",)), Not(RelationAtom("R", ("x",)))),
            )
        ]
        program = DatalogProgram(rules, order)
        world, _ = program.evaluate(db)
        s = world.relation("S")
        assert s.contains_values([Fraction(5)])
        assert not s.contains_values([Fraction(1, 2)])

    def test_negated_idb_inflationary(self):
        # win/lose style: W(x) :- M(x, y), not W(y) -- inflationary semantics
        db = GeneralizedDatabase(order)
        move = db.create_relation("M", ("x", "y"))
        move.add_point([1, 2])  # position 1 moves to 2
        move.add_point([2, 3])  # position 2 moves to 3; 3 is lost
        rules = parse_rules(
            "W(x) :- M(x, y), not W(y).",
            theory=order,
        )
        program = DatalogProgram(rules, order)
        assert program.has_negation()
        world, stats = program.evaluate(db)
        w = world.relation("W")
        # round 1: both 1 and 2 enter W (W empty); inflationary keeps both
        assert w.contains_values([Fraction(2)])
        assert w.contains_values([Fraction(1)])


class TestClosureGuard:
    def test_polynomial_recursion_refused(self):
        poly = RealPolynomialTheory()
        x, y, z = poly_var("x"), poly_var("y"), poly_var("z")
        rules = [
            Rule(RelationAtom("S", ("x", "y")), (RelationAtom("R", ("x", "y")),)),
            Rule(
                RelationAtom("S", ("x", "y")),
                (RelationAtom("R", ("x", "z")), RelationAtom("S", ("z", "y"))),
            ),
        ]
        with pytest.raises(NotClosedError):
            DatalogProgram(rules, poly)

    def test_example_112_divergence(self):
        # transitive closure of y = 2x diverges: each iteration adds y = 2^i x
        poly = RealPolynomialTheory()
        x, y, z = poly_var("x"), poly_var("y"), poly_var("z")
        rules = [
            Rule(RelationAtom("S", ("x", "y")), (RelationAtom("R", ("x", "y")),)),
            Rule(
                RelationAtom("S", ("x", "y")),
                (RelationAtom("R", ("x", "z")), RelationAtom("S", ("z", "y"))),
            ),
        ]
        program = DatalogProgram(rules, poly, allow_unsafe_recursion=True)
        db = GeneralizedDatabase(poly)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([poly_eq(y, 2 * x)])
        with pytest.raises(FixpointDivergenceError):
            program.evaluate(db, max_iterations=6)

    def test_nonrecursive_polynomial_allowed(self):
        poly = RealPolynomialTheory()
        rules = parse_rules("S(x) :- R(x, y), y = 0.", theory=poly)
        program = DatalogProgram(rules, poly)  # no recursion: fine
        db = GeneralizedDatabase(poly)
        r = db.create_relation("R", ("x", "y"))
        x, y = poly_var("x"), poly_var("y")
        r.add_tuple([poly_eq(y, x * x - 4)])
        world, _ = program.evaluate(db)
        s = world.relation("S")
        assert s.contains_values([Fraction(2)])
        assert s.contains_values([Fraction(-2)])
        assert not s.contains_values([Fraction(0)])


class TestStats:
    def test_rounds_recorded(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=order,
        )
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(5):
            edge.add_point([i, i + 1])
        program = DatalogProgram(rules, order)
        _, stats = program.evaluate(db)
        assert stats.per_round_new[-1] == 0
        assert sum(stats.per_round_new) == stats.tuples_added
        assert stats.rule_firings > 0


class TestStratified:
    def test_stratify_levels(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            U(x, y) :- V(x), V(y), not T(x, y).
            """,
            theory=order,
        )
        program = DatalogProgram(rules, order)
        strata = program.stratify()
        assert strata is not None
        assert [len(s) for s in strata] == [2, 1]

    def test_unstratifiable_detected(self):
        rules = parse_rules("W(x) :- M(x, y), not W(y).", theory=order)
        program = DatalogProgram(rules, order)
        assert program.stratify() is None
        with pytest.raises(EvaluationError):
            program.evaluate(GeneralizedDatabase(order), semantics="stratified")

    def test_unreachability_query(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            U(x, y) :- V(x), V(y), not T(x, y).
            """,
            theory=order,
        )
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        edge.add_point([1, 2])
        edge.add_point([2, 3])
        nodes = db.create_relation("V", ("x",))
        for n in (1, 2, 3):
            nodes.add_point([n])
        world, _ = DatalogProgram(rules, order).evaluate(db)
        u = world.relation("U")
        assert u.contains_values([Fraction(3), Fraction(1)])
        assert u.contains_values([Fraction(1), Fraction(1)])  # no self loop
        assert not u.contains_values([Fraction(1), Fraction(3)])

    def test_stratified_negation_of_edb(self):
        rules = parse_rules("S(x) :- V(x), not R(x).", theory=order)
        db = GeneralizedDatabase(order)
        db.create_relation("V", ("x",)).add_point([1])
        db.relation("V").add_point([2])
        db.create_relation("R", ("x",)).add_point([1])
        world, _ = DatalogProgram(rules, order).evaluate(db, semantics="stratified")
        s = world.relation("S")
        assert s.contains_values([Fraction(2)])
        assert not s.contains_values([Fraction(1)])
