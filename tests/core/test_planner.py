"""The per-round join planner: order quality, determinism, delta safety."""

from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.datalog import DatalogProgram, EngineOptions, EvaluationStats
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_rules
from repro.logic.syntax import RelationAtom

theory = DenseOrderTheory()


def _program(rules_text, **options):
    return DatalogProgram(
        parse_rules(rules_text, theory=theory),
        theory,
        options=EngineOptions(**options),
    )


class TestPlanOrder:
    def _plan(self, atoms, sizes, pinned=()):
        program = _program("T(x, y) :- E(x, y).")
        return program._plan(atoms, sizes, set(pinned), EvaluationStats())

    def test_smaller_source_first_when_disconnected(self):
        atoms = [RelationAtom("A", ("x", "y")), RelationAtom("B", ("u", "v"))]
        assert self._plan(atoms, [100, 3]) == [1, 0]

    def test_connectivity_beats_size(self):
        # after A(x,y), C shares y while B shares nothing -- C goes next
        # even though it is larger
        atoms = [
            RelationAtom("A", ("x", "y")),
            RelationAtom("B", ("u", "v")),
            RelationAtom("C", ("y", "z")),
        ]
        assert self._plan(atoms, [1, 2, 50]) == [0, 2, 1]

    def test_pinned_constants_seed_connectivity(self):
        # u is pinned by a constraint atom, so B counts as connected at the
        # root and leads despite equal sizes
        atoms = [RelationAtom("A", ("x", "y")), RelationAtom("B", ("u", "v"))]
        assert self._plan(atoms, [5, 5], pinned={"u"}) == [1, 0]

    def test_deterministic_tie_break(self):
        atoms = [RelationAtom("A", ("x", "y")), RelationAtom("B", ("x", "z"))]
        assert self._plan(atoms, [5, 5]) == [0, 1]

    def test_single_atom_not_counted_as_plan(self):
        stats = EvaluationStats()
        program = _program("T(x, y) :- E(x, y).")
        assert program._plan([RelationAtom("E", ("x", "y"))], [9], set(), stats) == [0]
        assert stats.plans_built == 0


class TestPlannerInEngine:
    RULES = """
    T(x, y) :- E(x, y).
    T(x, y) :- T(x, z), E(z, y).
    """

    def _chain(self, n):
        db = GeneralizedDatabase(theory)
        edges = db.create_relation("E", ("x", "y"))
        for i in range(n):
            edges.add_point([Fraction(i), Fraction(i + 1)])
        return db

    def test_replans_every_round_and_counts(self):
        program = _program(self.RULES, index_probes=False, parallel=False)
        _world, stats = self._run(program)
        # one plan per multi-atom rule firing per round
        assert stats.plans_built >= stats.iterations - 1
        assert stats.plan_reorders >= 0

    def test_delta_restriction_survives_reordering(self):
        # the recursive rule lists T first; whenever the planner moves E
        # ahead of the delta-bound T, the fixpoint must not change
        planned = _program(self.RULES, parallel=False)
        baseline = _program(self.RULES, join_planner=False, parallel=False)
        world_a, stats_a = self._run(planned)
        world_b, _stats_b = self._run(baseline)
        fp = lambda w: frozenset(t.atoms for t in w.relation("T"))
        assert fp(world_a) == fp(world_b)
        assert stats_a.plans_built > 0

    def _run(self, program):
        return program.evaluate(self._chain(8))
