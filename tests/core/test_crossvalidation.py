"""Cross-validation: the practical evaluator vs the paper-verbatim algorithms.

Two independent implementations of the same semantics -- the direct
DNF/QE evaluator (:mod:`repro.core.calculus`) and the Section 3.1/4
configuration-enumeration algorithms -- are run on *random* queries and
databases and compared pointwise.  Any divergence is a bug in one of them.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt, ne
from repro.constraints.equality import EqualityTheory
from repro.constraints.equality import eq as eeq, ne as ene
from repro.core.calculus import evaluate_calculus
from repro.core.econfig import evaluate_query_econfig
from repro.core.generalized import GeneralizedDatabase
from repro.core.rconfig import evaluate_query_rconfig
from repro.logic.syntax import And, Exists, Formula, Not, Or, RelationAtom

order = DenseOrderTheory()
equality = EqualityTheory()


@st.composite
def dense_order_database(draw):
    db = GeneralizedDatabase(order)
    r = db.create_relation("R", ("u",))
    for _ in range(draw(st.integers(1, 3))):
        low = draw(st.integers(0, 6))
        width = draw(st.integers(0, 3))
        strict = draw(st.booleans())
        if strict and width:
            r.add_tuple([lt(low, "u"), lt("u", low + width)])
        else:
            r.add_tuple([le(low, "u"), le("u", low + width)])
    s = db.create_relation("S", ("u", "v"))
    for _ in range(draw(st.integers(0, 2))):
        a = draw(st.integers(0, 6))
        b = draw(st.integers(0, 6))
        s.add_point([a, b])
    return db


@st.composite
def dense_order_query(draw):
    """A random single-free-variable query over R(u) and S(u, v)."""
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return RelationAtom("R", ("x",))
    if kind == 1:
        return Not(RelationAtom("R", ("x",)))
    if kind == 2:
        c = draw(st.integers(0, 6))
        return And((RelationAtom("R", ("x",)), lt("x", c)))
    if kind == 3:
        return Exists(("w",), And((RelationAtom("S", ("x", "w")), lt("x", "w"))))
    if kind == 4:
        return Or(
            (
                RelationAtom("R", ("x",)),
                Exists(("w",), RelationAtom("S", ("w", "x"))),
            )
        )
    return And(
        (
            Not(RelationAtom("R", ("x",))),
            Exists(("w",), And((RelationAtom("S", ("x", "w")), ne("x", "w")))),
        )
    )


class TestDenseOrderCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(dense_order_database(), dense_order_query())
    def test_direct_vs_rconfig(self, db, query):
        direct = evaluate_calculus(query, db, output=("x",))
        via_config = evaluate_query_rconfig(query, db, output=("x",))
        for value in [Fraction(v, 2) for v in range(-2, 22)]:
            assert direct.contains_values([value]) == via_config.contains_values(
                [value]
            ), (query, value)


@st.composite
def equality_database(draw):
    db = GeneralizedDatabase(equality)
    r = db.create_relation("R", ("u",))
    for _ in range(draw(st.integers(1, 3))):
        r.add_point([draw(st.integers(0, 4))])
    s = db.create_relation("S", ("u", "v"))
    for _ in range(draw(st.integers(0, 2))):
        if draw(st.booleans()):
            s.add_point([draw(st.integers(0, 4)), draw(st.integers(0, 4))])
        else:
            s.add_tuple([ene("u", "v")])
    return db


@st.composite
def equality_query(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return RelationAtom("R", ("x",))
    if kind == 1:
        return Not(RelationAtom("R", ("x",)))
    if kind == 2:
        c = draw(st.integers(0, 4))
        return And((RelationAtom("R", ("x",)), ene("x", c)))
    if kind == 3:
        return Exists(("w",), And((RelationAtom("S", ("x", "w")), eeq("w", 1))))
    return Or(
        (
            RelationAtom("R", ("x",)),
            Exists(("w",), RelationAtom("S", ("w", "x"))),
        )
    )


class TestEqualityCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(equality_database(), equality_query())
    def test_direct_vs_econfig(self, db, query):
        direct = evaluate_calculus(query, db, output=("x",))
        via_config = evaluate_query_econfig(query, db, output=("x",))
        for value in range(-1, 8):
            assert direct.contains_values([value]) == via_config.contains_values(
                [value]
            ), (query, value)
