"""Cross-validation: the practical evaluator vs the paper-verbatim algorithms.

Two independent implementations of the same semantics -- the direct
DNF/QE evaluator (:mod:`repro.core.calculus`) and the Section 3.1/4
configuration-enumeration algorithms -- are run on *random* queries and
databases and compared.  Any divergence is a bug in one of them.

The random cases come from :mod:`repro.conformance.generators` (the same
grammar the ``python -m repro conformance`` fuzzer uses), and comparison
goes through the conformance oracles: symbolic symmetric difference plus
endpoint-grid point sampling, rather than a fixed probe list.

Theorem 5.6 coverage: the boolean theory (B_m) is cross-validated by
running each random Datalog program both through the generic constraint
engine and through the Boole's-lemma table engine.
"""

from hypothesis import assume, given, strategies as st

from repro.conformance.generators import case_seed, generate_case, resolve_seed
from repro.conformance.oracles import compare_relations
from repro.conformance.strategies import strategies_for


def _route(spec, name):
    return next(r for r in strategies_for(spec) if r.name == name)


def _cross_check(spec, left_name, right_name):
    left = _route(spec, left_name).run(spec)
    right = _route(spec, right_name).run(spec)
    found = compare_relations(
        left, right, left_name, right_name, spec.theory, m=spec.m
    )
    assert found is None, (
        f"seed={spec.seed}: {left_name} vs {right_name}: {found.describe()}"
    )


class TestDenseOrderCrossValidation:
    @given(index=st.integers(0, 2**20))
    def test_direct_vs_rconfig(self, index):
        spec = generate_case(
            "dense_order", case_seed(resolve_seed(0), "dense_order", index)
        )
        assume(spec.kind == "calculus")
        _cross_check(spec, "calculus", "rconfig")


class TestEqualityCrossValidation:
    @given(index=st.integers(0, 2**20))
    def test_direct_vs_econfig(self, index):
        spec = generate_case(
            "equality", case_seed(resolve_seed(0), "equality", index)
        )
        assume(spec.kind == "calculus")
        _cross_check(spec, "calculus", "econfig")


class TestBooleanCrossValidation:
    """Theorem 5.6: Datalog over B_m via the generic engine vs Boole's lemma."""

    @given(index=st.integers(0, 2**20))
    def test_engine_vs_boole_lemma(self, index):
        spec = generate_case(
            "boolean", case_seed(resolve_seed(0), "boolean", index)
        )
        assume(spec.kind == "datalog")
        _cross_check(spec, "datalog[all_on]", "boole_lemma")

    @given(index=st.integers(0, 2**20))
    def test_calculus_vs_algebra(self, index):
        spec = generate_case(
            "boolean", case_seed(resolve_seed(0), "boolean", index)
        )
        assume(spec.kind == "calculus")
        _cross_check(spec, "calculus", "algebra")
