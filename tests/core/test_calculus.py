"""Tests for bottom-up closed-form calculus evaluation (the Figure 1 pipeline)."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt
from repro.constraints.equality import EqualityTheory
from repro.constraints.equality import eq as eeq
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq, poly_le
from repro.core.calculus import complement_dnf, evaluate_boolean_query, evaluate_calculus
from repro.core.generalized import GeneralizedDatabase
from repro.errors import ArityError, EvaluationError
from repro.logic.parser import parse_query
from repro.logic.syntax import And, Exists, ForAll, Not, Or, RelationAtom
from repro.poly.polynomial import poly_var

order = DenseOrderTheory()


def interval_db(*bounds):
    """A database with a unary relation R of intervals."""
    db = GeneralizedDatabase(order)
    r = db.create_relation("R", ("x",))
    for low, high in bounds:
        r.add_tuple([le(low, "x"), le("x", high)])
    return db


class TestBasics:
    def test_identity(self):
        db = interval_db((0, 1))
        result = evaluate_calculus(RelationAtom("R", ("x",)), db)
        assert result.contains_values([Fraction(1, 2)])
        assert not result.contains_values([Fraction(2)])

    def test_conjunction_with_constraint(self):
        db = interval_db((0, 10))
        query = And((RelationAtom("R", ("x",)), lt(5, "x")))
        result = evaluate_calculus(query, db)
        assert result.contains_values([Fraction(7)])
        assert not result.contains_values([Fraction(3)])

    def test_union(self):
        db = interval_db((0, 1), (5, 6))
        query = RelationAtom("R", ("x",))
        result = evaluate_calculus(query, db)
        assert result.contains_values([Fraction(1, 2)])
        assert result.contains_values([Fraction(11, 2)])
        assert not result.contains_values([Fraction(3)])

    def test_existential_projection(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([lt("x", "y"), lt("y", 5)])
        query = Exists(("y",), RelationAtom("R", ("x", "y")))
        result = evaluate_calculus(query, db)
        # exists y: x < y < 5 iff x < 5
        assert result.contains_values([Fraction(4)])
        assert result.contains_values([Fraction(-100)])
        assert not result.contains_values([Fraction(5)])

    def test_negation_complement(self):
        db = interval_db((0, 1))
        query = Not(RelationAtom("R", ("x",)))
        result = evaluate_calculus(query, db)
        assert result.contains_values([Fraction(2)])
        assert result.contains_values([Fraction(-1)])
        assert not result.contains_values([Fraction(1, 2)])
        # boundary points belong to R, not the complement
        assert not result.contains_values([Fraction(0)])

    def test_forall(self):
        # forall y (R(y) -> y <= x) i.e. x is an upper bound of R
        db = interval_db((0, 1), (2, 3))
        query = ForAll(
            ("y",),
            Or((Not(RelationAtom("R", ("y",))), le("y", "x"))),
        )
        result = evaluate_calculus(query, db)
        assert result.contains_values([Fraction(3)])
        assert result.contains_values([Fraction(10)])
        assert not result.contains_values([Fraction(5, 2)])

    def test_output_order(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("a", "b"))
        r.add_tuple([eq("a", 1), eq("b", 2)])
        result = evaluate_calculus(
            RelationAtom("R", ("x", "y")), db, output=("y", "x")
        )
        assert result.variables == ("y", "x")
        assert result.contains_point({"x": Fraction(1), "y": Fraction(2)})

    def test_output_mismatch_rejected(self):
        db = interval_db((0, 1))
        with pytest.raises(EvaluationError):
            evaluate_calculus(RelationAtom("R", ("x",)), db, output=("x", "y"))

    def test_arity_mismatch_rejected(self):
        db = interval_db((0, 1))
        with pytest.raises(ArityError):
            evaluate_calculus(RelationAtom("R", ("x", "y")), db)

    def test_boolean_query(self):
        db = interval_db((0, 1))
        yes = Exists(("x",), And((RelationAtom("R", ("x",)), lt(0, "x"))))
        no = Exists(("x",), And((RelationAtom("R", ("x",)), lt(5, "x"))))
        assert evaluate_boolean_query(yes, db)
        assert not evaluate_boolean_query(no, db)

    def test_boolean_query_requires_closed(self):
        db = interval_db((0, 1))
        with pytest.raises(EvaluationError):
            evaluate_boolean_query(RelationAtom("R", ("x",)), db)


class TestComplement:
    def test_complement_roundtrip(self):
        dnf = [(le(0, "x"), le("x", 1)), (eq("x", 5),)]
        complement = complement_dnf(dnf, order)
        # point in neither
        for value, inside in [(Fraction(1, 2), True), (Fraction(5), True),
                              (Fraction(3), False), (Fraction(-2), False)]:
            in_original = any(
                all(a.holds({"x": value}) for a in conj) for conj in dnf
            )
            in_complement = any(
                all(a.holds({"x": value}) for a in conj) for conj in complement
            )
            assert in_original == inside
            assert in_original != in_complement

    def test_complement_of_everything_is_empty(self):
        assert complement_dnf([()], order) == []

    def test_complement_of_empty_is_everything(self):
        result = complement_dnf([], order)
        assert result == [()]


class TestRectangleExample:
    """Example 1.1 / Figure 2: rectangle intersection in three lines of CQL."""

    def setup_method(self):
        self.db = GeneralizedDatabase(order)
        rect = self.db.create_relation("Rect", ("n", "x", "y"))
        rectangles = {1: (0, 0, 2, 2), 2: (1, 1, 3, 3), 3: (10, 10, 11, 11)}
        for name, (a, b, c, d) in rectangles.items():
            rect.add_tuple(
                [eq("n", name), le(a, "x"), le("x", c), le(b, "y"), le("y", d)]
            )

    def test_intersection_pairs(self):
        query = parse_query(
            "exists x, y . Rect(n1, x, y) and Rect(n2, x, y) and n1 != n2",
            theory=order,
        )
        result = evaluate_calculus(query, self.db, output=("n1", "n2"))
        assert result.contains_values([Fraction(1), Fraction(2)])
        assert result.contains_values([Fraction(2), Fraction(1)])
        assert not result.contains_values([Fraction(1), Fraction(3)])
        assert not result.contains_values([Fraction(1), Fraction(1)])

    def test_same_program_for_triangle_like_shapes(self):
        # the same program works for non-rectangular shapes: add a "triangle"
        # x >= 0, y >= 0, x + y <= ... dense order cannot express x+y, so use
        # an L-shaped union of two boxes under one name instead
        rect = self.db.relation("Rect")
        rect.add_tuple([eq("n", 4), le(0, "x"), le("x", 1), le(4, "y"), le("y", 6)])
        rect.add_tuple([eq("n", 4), le(0, "x"), le("x", 6), le(4, "y"), le("y", 5)])
        query = parse_query(
            "exists x, y . Rect(n1, x, y) and Rect(n2, x, y) and n1 != n2",
            theory=order,
        )
        result = evaluate_calculus(query, self.db, output=("n1", "n2"))
        # the L-shape does not meet square 1 (y ranges disjoint)
        assert not result.contains_values([Fraction(4), Fraction(1)])


class TestEqualityTheoryCalculus:
    def test_unsafe_query_closed(self):
        # Section 4 motivation: the "unsafe" query not R(x) has an infinite
        # answer, finitely represented with disequalities
        eqt = EqualityTheory()
        db = GeneralizedDatabase(eqt)
        r = db.create_relation("R", ("x",))
        r.add_point([1])
        r.add_point([2])
        result = evaluate_calculus(Not(RelationAtom("R", ("x",))), db)
        assert result.contains_values([3])
        assert result.contains_values([999])
        assert not result.contains_values([1])
        assert not result.contains_values([2])

    def test_join_on_equality(self):
        eqt = EqualityTheory()
        db = GeneralizedDatabase(eqt)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([eeq("x", "y")])
        s = db.create_relation("S", ("x",))
        s.add_point([5])
        query = Exists(
            ("y",), And((RelationAtom("R", ("x", "y")), RelationAtom("S", ("y",))))
        )
        result = evaluate_calculus(query, db)
        assert result.contains_values([5])
        assert not result.contains_values([6])


class TestPolynomialCalculus:
    def test_circle_projection_query(self):
        poly = RealPolynomialTheory()
        db = GeneralizedDatabase(poly)
        circle = db.create_relation("C", ("x", "y"))
        x, y = poly_var("x"), poly_var("y")
        circle.add_tuple([poly_le(x * x + y * y, 1)])
        query = Exists(("y",), RelationAtom("C", ("x", "y")))
        result = evaluate_calculus(query, db)
        assert result.contains_values([Fraction(1, 2)])
        assert result.contains_values([Fraction(1)])
        assert not result.contains_values([Fraction(3, 2)])

    def test_intersection_of_disks(self):
        poly = RealPolynomialTheory()
        db = GeneralizedDatabase(poly)
        disks = db.create_relation("D", ("n", "x", "y"))
        x, y, n = poly_var("x"), poly_var("y"), poly_var("n")
        disks.add_tuple([poly_eq(n, 1), poly_le(x * x + y * y, 1)])
        disks.add_tuple([poly_eq(n, 2), poly_le((x - 1) ** 2 + y * y, 1)])
        disks.add_tuple([poly_eq(n, 3), poly_le((x - 10) ** 2 + y * y, 1)])
        query = parse_query(
            "exists x, y . D(n1, x, y) and D(n2, x, y) and n1 != n2",
            theory=poly,
        )
        result = evaluate_calculus(query, db, output=("n1", "n2"))
        assert result.contains_values([Fraction(1), Fraction(2)])
        assert not result.contains_values([Fraction(1), Fraction(3)])
