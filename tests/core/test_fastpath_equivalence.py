"""Property tests: the engine fast path never changes a fixpoint.

Every optimization layer (TheoryCache, rename cache, incremental joins,
complement cache, pin filter) is a pure evaluation shortcut, so evaluating
any program with all optimizations enabled must produce exactly the same
generalized relations as the stripped engine, under every semantics.  These
tests drive random dense-order and equality programs through both engines
and compare canonical fixpoints, and check the incremental dense-order
closure against the from-scratch solver.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, OrderAtom
from repro.constraints.equality import EqualityTheory
from repro.constraints.terms import Const, Var
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_rules

POSITIVE_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

NEGATION_RULES = POSITIVE_RULES + """
U(x, y) :- V(x), V(y), not T(x, y).
"""

SEMANTICS = ("auto", "stratified", "inflationary")


def _random_dense_db(theory, rng, size):
    """A small random graph: point edges plus the odd interval tuple."""
    db = GeneralizedDatabase(theory)
    edges = db.create_relation("E", ("x", "y"))
    nodes = max(2, size)
    for _ in range(size + 1):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a == b:
            continue
        edges.add_point([a, b])
    if rng.random() < 0.5:
        lo = rng.randrange(nodes)
        dense = theory
        edges.add_tuple(
            [
                dense.le(Fraction(lo), "x"),
                dense.lt("x", "y"),
                dense.le("y", Fraction(lo + 1)),
            ]
        )
    vertices = db.create_relation("V", ("x",))
    for v in range(min(nodes, 4)):
        vertices.add_point([v])
    return db


def _random_equality_db(theory, rng, size):
    db = GeneralizedDatabase(theory)
    edges = db.create_relation("E", ("x", "y"))
    nodes = max(2, size)
    for _ in range(size + 1):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a == b:
            continue
        edges.add_point([a, b])
    if rng.random() < 0.5:
        # a tuple with a free second column, constrained only by !=
        edges.add_tuple(
            [theory.eq("x", theory.const(0)), theory.ne("x", "y")]
        )
    vertices = db.create_relation("V", ("x",))
    for v in range(min(nodes, 4)):
        vertices.add_point([v])
    return db


def _fingerprint(world, names):
    return {
        name: frozenset(frozenset(t.atoms) for t in world.relation(name))
        for name in names
    }


def _assert_fastpath_equivalent(make_theory, make_db, seed, size):
    rng = random.Random(seed)
    for rules_text, names in (
        (POSITIVE_RULES, ("T",)),
        (NEGATION_RULES, ("T", "U")),
    ):
        # one database layout per (seed, rules) pair, rebuilt per engine so
        # neither evaluation sees the other's caches
        layout_seed = rng.randrange(1 << 30)
        for semantics in SEMANTICS:
            for semi_naive in (True, False):
                results = []
                for options in (EngineOptions.all_on(), EngineOptions.all_off()):
                    theory = make_theory()
                    db = make_db(theory, random.Random(layout_seed), size)
                    program = DatalogProgram(
                        parse_rules(rules_text, theory=theory),
                        theory,
                        options=options,
                    )
                    world, stats = program.evaluate(
                        db, semi_naive=semi_naive, semantics=semantics
                    )
                    results.append(_fingerprint(world, names))
                assert results[0] == results[1], (
                    f"fast path changed the {semantics} fixpoint "
                    f"(semi_naive={semi_naive}, seed={seed})"
                )


class TestFastPathEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_dense_order_programs(self, seed, size):
        _assert_fastpath_equivalent(
            DenseOrderTheory, _random_dense_db, seed, size
        )

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_equality_programs(self, seed, size):
        _assert_fastpath_equivalent(
            EqualityTheory, _random_equality_db, seed, size
        )


def _random_order_atoms(rng, variables, count, constants=4):
    atoms = []
    for _ in range(count):
        op = rng.choice(["<", "<=", "=", "!="])
        left = Var(rng.choice(variables))
        if rng.random() < 0.5:
            right = Var(rng.choice(variables))
            if right == left:
                continue
        else:
            right = Const(Fraction(rng.randrange(constants)))
        atoms.append(OrderAtom(op, left, right))
    return atoms


class TestIncrementalClosure:
    """begin/extend_conjunction must agree with the from-scratch solver."""

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 100_000))
    def test_incremental_matches_scratch(self, seed):
        rng = random.Random(seed)
        theory = DenseOrderTheory()
        variables = [f"v{i}" for i in range(rng.randrange(2, 5))]
        chunks = [
            _random_order_atoms(rng, variables, rng.randrange(1, 4))
            for _ in range(rng.randrange(1, 5))
        ]
        context = theory.begin_conjunction(tuple(chunks[0]))
        for chunk in chunks[1:]:
            context = theory.extend_conjunction(context, tuple(chunk))
        flat = tuple(a for chunk in chunks for a in chunk)
        assert context.atoms == flat
        scratch_sat = theory._is_satisfiable(flat)
        assert context.satisfiable == scratch_sat
        if scratch_sat:
            # the incremental insertion must derive exactly the entailed
            # order facts the from-scratch Warshall closure derives
            from repro.constraints.dense_order import _Closure

            state = context.state
            scratch = _Closure(flat)
            assert isinstance(state, _Closure)
            for a in scratch.terms:
                for b in scratch.terms:
                    assert state.weakly_less(a, b) == scratch.weakly_less(a, b)
                    assert state.strictly_less(a, b) == scratch.strictly_less(
                        a, b
                    )


class TestFourTheoryMatrix:
    """Planner + index probes + parallel workers across all four theories.

    Drives conformance-generated datalog cases (dense order, equality,
    boolean, real polynomial) through the engine under every interesting
    flag combination -- all on, all off, only the three new layers off
    ("serial scan"), and a forced multi-worker parallel config -- under
    both fixpoint orders and all semantics, and requires identical
    canonical fixpoints.  ``parallel_workers=3`` matters: the auto-sized
    pool degrades to the serial path on single-CPU machines, and this
    property must exercise the threaded round executor everywhere.
    """

    CONFIGS = (
        EngineOptions.all_on(),
        EngineOptions.all_off(),
        EngineOptions(join_planner=False, index_probes=False, parallel=False),
        EngineOptions(parallel_workers=3),
    )

    @staticmethod
    def _datalog_spec(theory_name, seed):
        from repro.conformance.generators import generate_case

        for probe in range(25):
            spec = generate_case(theory_name, seed + probe)
            if spec.kind == "datalog":
                return spec
        return None

    def _assert_matrix(self, theory_name, seed):
        from repro.conformance.spec import build_case

        spec = self._datalog_spec(theory_name, seed)
        if spec is None:
            return
        fingerprints = set()
        for options in self.CONFIGS:
            for semi_naive in (True, False):
                case = build_case(spec)
                program = DatalogProgram(case.rules, case.theory, options=options)
                world, _stats = program.evaluate(
                    case.database,
                    semi_naive=semi_naive,
                    semantics=spec.semantics,
                )
                fingerprints.add(
                    frozenset(
                        frozenset(t.atoms)
                        for t in world.relation(spec.target)
                    )
                )
        assert len(fingerprints) == 1, (
            f"{theory_name} fixpoint depends on engine flags (seed={seed}, "
            f"{len(fingerprints)} distinct answers)"
        )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dense_order(self, seed):
        self._assert_matrix("dense_order", seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equality(self, seed):
        self._assert_matrix("equality", seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_boolean(self, seed):
        self._assert_matrix("boolean", seed)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_real_poly(self, seed):
        self._assert_matrix("real_poly", seed)
