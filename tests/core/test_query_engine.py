"""Tests for the demand-driven query front door (``repro.core.query``).

Covers the :class:`Engine` facade (goal parsing through answer selection),
the containment-based result-reuse cache with its version-snapshot
invalidation (including maintained IVM deltas through shared relations),
plan warmth for repeated adornment shapes, the full-fixpoint oracle path
(``EngineOptions.magic`` off), and the ``python -m repro query`` CLI.
"""

import json
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.core.magic import select_answers
from repro.core.query import Engine, main as query_main
from repro.errors import EvaluationError
from repro.logic.parser import parse_rules
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def tc_engine(n=8, **options):
    rules = parse_rules(TC_RULES, theory=order)
    return Engine(
        rules,
        order,
        options=replace(EngineOptions(), **options),
        database=chain_edges(n),
    )


def keys(relation):
    return frozenset(relation.keys())


class TestEngineQuery:
    def test_bound_query_matches_oracle(self):
        engine = tc_engine()
        result = engine.query("T(0, y)")
        assert result.adornment == "bf"
        assert result.magic_rules >= 1
        assert not result.full_fallback
        full_world, _ = DatalogProgram(engine.rules, order).evaluate(
            engine.database
        )
        expected = select_answers(
            full_world.relation("T"), result.query, order
        )
        assert keys(result.relation) == keys(expected)

    def test_cone_smaller_than_full_fixpoint(self):
        engine = tc_engine(16)
        result = engine.query("T(14, y)")
        full_world, _ = DatalogProgram(engine.rules, order).evaluate(
            engine.database
        )
        assert result.cone_tuples < len(full_world.relation("T"))

    def test_interval_goal(self):
        engine = tc_engine()
        result = engine.query("T(x, y), 5 < x, x < 7")
        assert result.adornment == "bf"
        points = {
            (point["_0"], point["_1"]) for point in result.sample_points()
        }
        assert all(Fraction(5) < a < Fraction(7) for a, _ in points)
        assert len(result) > 0

    def test_magic_off_is_the_full_oracle(self):
        magic = tc_engine().query("T(0, y)")
        oracle = tc_engine(magic=False).query("T(0, y)")
        assert keys(magic.relation) == keys(oracle.relation)
        assert oracle.magic_rules == 0

    def test_non_idb_goal_rejected_both_paths(self):
        for engine in (tc_engine(), tc_engine(magic=False)):
            with pytest.raises(EvaluationError):
                engine.query("E(0, y)")

    def test_no_database_rejected(self):
        rules = parse_rules(TC_RULES, theory=order)
        with pytest.raises(EvaluationError):
            Engine(rules, order).query("T(0, y)")

    def test_explicit_database_argument(self):
        rules = parse_rules(TC_RULES, theory=order)
        engine = Engine(rules, order)
        result = engine.query("T(0, y)", chain_edges(3))
        assert len(result) == 3

    def test_result_as_dict(self):
        document = tc_engine().query("T(0, y)").as_dict()
        assert document["predicate"] == "T"
        assert document["adornment"] == "bf"
        assert document["answers"] == len(document["answer_keys"])
        assert "stats" in document

    def test_repeated_adornment_hits_plan_cache(self):
        engine = tc_engine()
        engine.query("T(0, y)")
        # same shape, different constant: the plan is memoized and the
        # process-wide compiled-plan cache is warm
        warm = engine.query("T(3, y)")
        assert warm.stats.compile_hits >= 1
        assert len(engine._prepared) == 1


class TestReuseCache:
    def test_exact_repeat_is_a_hit(self):
        engine = tc_engine()
        first = engine.query("T(0, y)")
        assert not first.reused
        second = engine.query("T(0, y)")
        assert second.reused
        assert second.stats.magic_reuse_hits == 1
        assert keys(second.relation) == keys(first.relation)
        assert engine.cache.stats()["hits"] == 1

    def test_contained_query_reselects_cached_answers(self):
        engine = tc_engine()
        broad = engine.query("T(x, y), 0 < x, x < 6")
        narrow = engine.query("T(x, y), 2 < x, x < 4")
        assert narrow.reused
        oracle = tc_engine(magic=False).query("T(x, y), 2 < x, x < 4")
        assert keys(narrow.relation) == keys(oracle.relation)
        assert len(narrow.relation) < len(broad.relation)

    def test_edb_mutation_invalidates(self):
        engine = tc_engine(4)
        engine.query("T(0, y)")
        engine.database.relation("E").add_point([4, 5])
        result = engine.query("T(0, y)")
        assert not result.reused
        assert engine.cache.stats()["invalidations"] >= 1
        assert result.relation.contains_values([Fraction(0), Fraction(5)])

    def test_cache_disabled_without_magic(self):
        engine = tc_engine(magic=False)
        engine.query("T(0, y)")
        second = engine.query("T(0, y)")
        assert not second.reused
        assert engine.cache.stats()["entries"] == 0


class TestViewQueries:
    def test_maintained_deltas_invalidate_cached_answers(self):
        from repro.core.ivm import MaterializedView

        rules = parse_rules(TC_RULES, theory=order)
        program = DatalogProgram(rules, order, options=EngineOptions.all_on())
        view = MaterializedView(program, chain_edges(3))
        try:
            engine = Engine.from_view(view)
            before = engine.query("T(0, y)")
            assert not before.reused
            assert engine.query("T(0, y)").reused
            version = view.delta_version
            view.insert(
                "E",
                [
                    order.equality("x", order.constant(3)),
                    order.equality("y", order.constant(4)),
                ],
            )
            assert view.delta_version > version
            after = engine.query("T(0, y)")
            assert not after.reused
            assert after.relation.contains_values([Fraction(0), Fraction(4)])
            assert not before.relation.contains_values(
                [Fraction(0), Fraction(4)]
            )
        finally:
            view.close()


PROGRAM = """\
# theory: dense_order
# target: reach
# relation: E/2

reach(x, y) :- E(x, y).
reach(x, z) :- E(x, y), reach(y, z).
"""


class TestQueryCli:
    def write(self, tmp_path):
        path = tmp_path / "reach.cql"
        path.write_text(PROGRAM)
        return str(path)

    def test_text_output(self, tmp_path, capsys):
        code = query_main(
            [
                self.write(tmp_path),
                "reach(0, y)",
                "--fact", "E(0, 1)",
                "--fact", "E(1, 2)",
                "--fact", "E(5, 6)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 answer(s) [reach^bf, magic]" in out
        assert "magic rule(s)" in out

    def test_json_output(self, tmp_path, capsys):
        code = query_main(
            [
                self.write(tmp_path),
                "reach(x, y), 0 < x, x < 2",
                "--fact", "E(0, 1)",
                "--fact", "E(1, 2)",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["predicate"] == "reach"
        assert document["adornment"] == "bf"
        assert document["answers"] == 1
        assert document["full_fixpoint_tuples"] == 3
        assert not document["full_fallback"]

    def test_no_magic_oracle_mode(self, tmp_path, capsys):
        code = query_main(
            [
                self.write(tmp_path),
                "reach(0, y)",
                "--fact", "E(0, 1)",
                "--no-magic",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "full fixpoint (magic off)" in out

    def test_bad_goal_reports_error(self, tmp_path, capsys):
        code = query_main(
            [self.write(tmp_path), "nope(0, y)", "--fact", "E(0, 1)"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
