"""Property tests: a maintained view always equals from-scratch evaluation.

The maintenance contract is *stepwise*: after every insert/retract delta the
:class:`~repro.core.ivm.MaterializedView` world must equal (as canonical key
sets) a fresh fixpoint of the same program over the current EDB state -- not
just at the end of a sequence.  These tests drive random insert/retract
interleavings (including retract-then-reinsert churn and no-op deltas) over
hand-built transitive-closure/negation programs on the two pointwise
theories, and over conformance-generated cases on all four theories under
their generated semantics, with both fixpoint orders.

A second family checks the *cost* half of the contract: maintenance work is
proportional to the delta, so a no-op batch ticks no joins at all and a
single-tuple insert into a large closure ticks strictly fewer joins than
recomputing that closure from scratch.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core import MaterializedView
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase, GeneralizedTuple
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget, metered

POSITIVE_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

NEGATION_RULES = POSITIVE_RULES + """
U(x, y) :- V(x), V(y), not T(x, y).
"""

SEMANTICS = ("auto", "stratified", "inflationary")


def _point(theory, variables, values):
    return GeneralizedTuple(
        tuple(variables),
        tuple(
            theory.equality(v, theory.constant(Fraction(c)))
            for v, c in zip(variables, values)
        ),
    )


def _empty_db(theory, schema):
    db = GeneralizedDatabase(theory)
    for name, variables in schema:
        db.create_relation(name, variables)
    return db


def _scratch_fingerprint(rules_text, make_theory, schema, edb_keys,
                         key_to_values, semantics):
    """Evaluate from scratch over the shadow EDB and fingerprint everything."""
    theory = make_theory()
    db = _empty_db(theory, schema)
    for name, _variables in schema:
        relation = db.relation(name)
        for key in sorted(edb_keys[name]):
            relation.add_point([Fraction(v) for v in key_to_values[key]])
    program = DatalogProgram(
        parse_rules(rules_text, theory=theory),
        theory,
        options=EngineOptions.all_on(),
    )
    world, _stats = program.evaluate(db, semantics=semantics)
    return {name: frozenset(world.relation(name).keys())
            for name in world.names()}


def _random_steps(rng, pool, count):
    """Random insert/retract interleaving over a tuple pool.

    Retracts are drawn from the whole pool, so absent-tuple retracts (and
    double inserts) occur naturally; a shadow set tracks the true EDB.
    """
    steps = []
    present = set()
    for _ in range(count):
        key = rng.choice(pool)
        if key in present and rng.random() < 0.45:
            steps.append(("retract", key))
            present.discard(key)
        else:
            steps.append(("insert", key))
            present.add(key)
        if rng.random() < 0.15:
            # deliberate no-op: retract something never inserted
            steps.append(("retract", ("E", 98, 99)))
    return steps


def _assert_maintained_equals_scratch(make_theory, rules_text, schema,
                                      seed, semantics, semi_naive):
    rng = random.Random(seed)
    nodes = rng.randrange(3, 6)
    pool = [("E", a, b) for a in range(nodes) for b in range(nodes) if a != b]
    rng.shuffle(pool)
    pool = pool[: rng.randrange(4, 9)]
    if any(name == "V" for name, _ in schema):
        pool += [("V", v) for v in range(min(nodes, 3))]
    key_to_values = {key: key[1:] for key in pool}
    key_to_values[("E", 98, 99)] = (98, 99)

    theory = make_theory()
    program = DatalogProgram(
        parse_rules(rules_text, theory=theory),
        theory,
        options=EngineOptions.all_on(),
    )
    view = MaterializedView(
        program,
        _empty_db(theory, schema),
        semantics=semantics,
        semi_naive=semi_naive,
    )
    try:
        edb_keys = {name: set() for name, _ in schema}
        arity = dict(schema)
        for step_index, (op, key) in enumerate(
            _random_steps(rng, pool, rng.randrange(6, 14))
        ):
            name = key[0]
            item = _point(theory, arity[name], key_to_values[key])
            if op == "insert":
                view.insert(name, item)
                edb_keys[name].add(key)
            else:
                view.retract(name, item)
                edb_keys[name].discard(key)
            expected = _scratch_fingerprint(
                rules_text, make_theory, schema, edb_keys,
                key_to_values, semantics,
            )
            assert view.fingerprint() == expected, (
                f"maintained != scratch after step {step_index} "
                f"({op} {key}, semantics={semantics}, "
                f"semi_naive={semi_naive}, seed={seed})"
            )
    finally:
        view.close()


class TestHandBuiltPrograms:
    """Dense-order and equality TC (+ stratified negation) interleavings."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(SEMANTICS),
           st.booleans())
    def test_dense_order_positive(self, seed, semantics, semi_naive):
        _assert_maintained_equals_scratch(
            DenseOrderTheory, POSITIVE_RULES, [("E", ("x", "y"))],
            seed, semantics, semi_naive,
        )

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000),
           st.sampled_from(("auto", "stratified")), st.booleans())
    def test_dense_order_negation(self, seed, semantics, semi_naive):
        _assert_maintained_equals_scratch(
            DenseOrderTheory, NEGATION_RULES,
            [("E", ("x", "y")), ("V", ("x",))],
            seed, semantics, semi_naive,
        )

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(SEMANTICS),
           st.booleans())
    def test_equality_positive(self, seed, semantics, semi_naive):
        _assert_maintained_equals_scratch(
            EqualityTheory, POSITIVE_RULES, [("E", ("x", "y"))],
            seed, semantics, semi_naive,
        )

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_equality_negation_inflationary_fallback(self, seed, semi_naive):
        # negation + inflationary resolves to the whole-program recompute
        # mode; the stepwise contract must hold there too
        _assert_maintained_equals_scratch(
            EqualityTheory, NEGATION_RULES,
            [("E", ("x", "y")), ("V", ("x",))],
            seed, "inflationary", semi_naive,
        )


class TestFourTheoryMatrix:
    """Conformance-generated datalog cases replayed as update streams."""

    @staticmethod
    def _datalog_spec(theory_name, seed):
        from repro.conformance.generators import generate_case

        for probe in range(25):
            spec = generate_case(theory_name, seed + probe)
            if spec.kind == "datalog":
                return spec
        return None

    def _assert_replay(self, theory_name, seed, semi_naive):
        from repro.conformance.spec import build_case, decode_atom
        from repro.conformance.updates import update_sequence

        spec = self._datalog_spec(theory_name, seed)
        if spec is None:
            return
        case = build_case(spec)
        program = DatalogProgram(
            case.rules, case.theory, options=EngineOptions.all_on()
        )
        db = GeneralizedDatabase(case.theory)
        variables = {}
        for name, relation_variables, _tuples in spec.relations:
            db.create_relation(name, tuple(relation_variables))
            variables[name] = tuple(relation_variables)
        tuple_atoms = {
            (name, index): tuple(
                decode_atom(atom, case.theory) for atom in encoded
            )
            for name, _relation_variables, tuples in spec.relations
            for index, encoded in enumerate(tuples)
        }
        view = MaterializedView(program, db, semantics=spec.semantics)
        try:
            for op, name, index in update_sequence(spec, churn=2):
                item = GeneralizedTuple(
                    variables[name], tuple_atoms[(name, index)]
                )
                if op == "insert":
                    view.insert(name, item)
                else:
                    view.retract(name, item)
            # net effect of the churned stream is exactly the spec's EDB
            scratch_case = build_case(spec)
            scratch = DatalogProgram(
                scratch_case.rules,
                scratch_case.theory,
                options=EngineOptions.all_on(),
            )
            world, _stats = scratch.evaluate(
                scratch_case.database,
                semi_naive=semi_naive,
                semantics=spec.semantics,
            )
            maintained = view.fingerprint()
            for name in world.names():
                assert maintained[name] == frozenset(
                    world.relation(name).keys()
                ), (
                    f"{theory_name} replay diverged on {name!r} "
                    f"(seed={seed}, semi_naive={semi_naive})"
                )
        finally:
            view.close()

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_dense_order(self, seed, semi_naive):
        self._assert_replay("dense_order", seed, semi_naive)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_equality(self, seed, semi_naive):
        self._assert_replay("equality", seed, semi_naive)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_boolean(self, seed, semi_naive):
        self._assert_replay("boolean", seed, semi_naive)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_real_polynomial(self, seed, semi_naive):
        self._assert_replay("real_poly", seed, semi_naive)


def _chain_view(length):
    theory = DenseOrderTheory()
    program = DatalogProgram(
        parse_rules(POSITIVE_RULES, theory=theory),
        theory,
        options=EngineOptions.all_on(),
    )
    db = GeneralizedDatabase(theory)
    edges = db.create_relation("E", ("x", "y"))
    for i in range(length):
        edges.add_point([i, i + 1])
    return theory, program, MaterializedView(program, db)


def _ticks(view, **deltas):
    """Run one apply under an ambient meter and return its tick counts."""
    meter = Budget(joins=10**9, tuples=10**9, rounds=10**9).start()
    with metered(meter):
        view.apply(**deltas)
    return dict(meter.counts)


class TestDeltaProportionalWork:
    def test_noop_batch_ticks_no_joins(self):
        theory, _program, view = _chain_view(12)
        with view:
            present = _point(theory, ("x", "y"), (0, 1))
            absent = _point(theory, ("x", "y"), (50, 51))
            counts = _ticks(
                view, inserts=[("E", present)], retracts=[("E", absent)]
            )
            assert counts.get("join", 0) == 0
            assert counts.get("tuple", 0) == 0

    def test_single_insert_beats_scratch(self):
        length = 16
        theory, _program, view = _chain_view(length)
        with view:
            counts = _ticks(
                view,
                inserts=[("E", _point(theory, ("x", "y"), (length, length + 1)))],
            )
            maintained_joins = counts.get("join", 0)
            assert maintained_joins > 0

            # from-scratch cost over the *same* final EDB
            scratch_theory = DenseOrderTheory()
            db = GeneralizedDatabase(scratch_theory)
            edges = db.create_relation("E", ("x", "y"))
            for i in range(length + 1):
                edges.add_point([i, i + 1])
            program = DatalogProgram(
                parse_rules(POSITIVE_RULES, theory=scratch_theory),
                scratch_theory,
                options=EngineOptions.all_on(),
            )
            _world, stats = program.evaluate(db)
            assert maintained_joins < stats.join_steps, (
                f"maintenance ({maintained_joins} joins) not cheaper than "
                f"scratch ({stats.join_steps} joins)"
            )

    def test_retract_work_tracks_the_cut_suffix(self):
        # cutting the last edge of a chain touches only the tuples whose
        # derivations used it: far fewer joins than the full fixpoint
        length = 16
        theory, _program, view = _chain_view(length)
        with view:
            counts = _ticks(
                view,
                retracts=[("E", _point(theory, ("x", "y"), (length - 1, length)))],
            )
            scratch_theory = DenseOrderTheory()
            db = GeneralizedDatabase(scratch_theory)
            edges = db.create_relation("E", ("x", "y"))
            for i in range(length - 1):
                edges.add_point([i, i + 1])
            program = DatalogProgram(
                parse_rules(POSITIVE_RULES, theory=scratch_theory),
                scratch_theory,
                options=EngineOptions.all_on(),
            )
            _world, stats = program.evaluate(db)
            assert counts.get("join", 0) < stats.join_steps
