"""Failure-injection tests: wrong-theory atoms, arity abuse, malformed input.

The library must fail *loudly and specifically* -- never silently compute
over mismatched theories or truncated schemas.
"""

import pytest

from repro.constraints.dense_order import DenseOrderTheory, lt
from repro.constraints.equality import EqualityTheory, eq as eeq
from repro.constraints.real_poly import RealPolynomialTheory, poly_lt
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import (
    ArityError,
    EvaluationError,
    ParseError,
    TheoryError,
    UnknownRelationError,
)
from repro.logic.parser import parse_query, parse_rules
from repro.logic.syntax import And, Exists, RelationAtom

order = DenseOrderTheory()
equality = EqualityTheory()
poly = RealPolynomialTheory()


class TestCrossTheoryMisuse:
    def test_equality_atom_in_dense_relation(self):
        relation = GeneralizedRelation("R", ("x", "y"), order)
        with pytest.raises(TheoryError):
            relation.add_tuple([eeq("x", "y")])

    def test_poly_atom_in_equality_theory(self):
        with pytest.raises(TheoryError):
            equality.is_satisfiable((poly_lt("x", 1),))

    def test_dense_atom_in_poly_theory(self):
        with pytest.raises(TheoryError):
            poly.canonicalize((lt("x", 1),))

    def test_mixed_atoms_in_one_tuple(self):
        relation = GeneralizedRelation("R", ("x",), order)
        with pytest.raises(TheoryError):
            relation.add_tuple([lt("x", 1), poly_lt("x", 1)])

    def test_query_with_foreign_atoms(self):
        db = GeneralizedDatabase(order)
        db.create_relation("R", ("x",)).add_point([1])
        query = And((RelationAtom("R", ("x",)), poly_lt("x", 5)))
        with pytest.raises(TheoryError):
            evaluate_calculus(query, db)


class TestArityAbuse:
    def test_query_arity_mismatch(self):
        db = GeneralizedDatabase(order)
        db.create_relation("R", ("x", "y"))
        with pytest.raises(ArityError):
            evaluate_calculus(RelationAtom("R", ("x",)), db)

    def test_rule_arity_conflict(self):
        rules = [
            Rule(RelationAtom("S", ("x",)), (RelationAtom("R", ("x",)),)),
            Rule(RelationAtom("S", ("x", "y")), (RelationAtom("R", ("x", "y")),)),
        ]
        with pytest.raises(ArityError):
            DatalogProgram(rules, order)

    def test_unknown_relation(self):
        db = GeneralizedDatabase(order)
        with pytest.raises(UnknownRelationError):
            evaluate_calculus(RelationAtom("Missing", ("x",)), db)

    def test_tuple_scope_violation(self):
        relation = GeneralizedRelation("R", ("x",), order)
        with pytest.raises(ArityError):
            relation.add_tuple([lt("x", "y")])


class TestMalformedPrograms:
    def test_rule_with_floating_head_variable(self):
        with pytest.raises(EvaluationError):
            Rule(RelationAtom("S", ("z",)), (RelationAtom("R", ("x",)),))

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as error:
            parse_query("R(x) and and S(x)", theory=order)
        assert error.value.position is not None

    def test_bad_semantics_name(self):
        rules = parse_rules("S(x) :- R(x), not T(x).", theory=order)
        program = DatalogProgram(rules, order)
        with pytest.raises(EvaluationError):
            program.evaluate(GeneralizedDatabase(order), semantics="bogus")

    def test_empty_program_evaluates_cleanly(self):
        program = DatalogProgram([], order)
        world, stats = program.evaluate(GeneralizedDatabase(order))
        assert stats.tuples_added == 0

    def test_quantifying_output_variable_rejected(self):
        db = GeneralizedDatabase(order)
        db.create_relation("R", ("x",)).add_point([1])
        query = Exists(("x",), RelationAtom("R", ("x",)))
        with pytest.raises(EvaluationError):
            evaluate_calculus(query, db, output=("x",))
