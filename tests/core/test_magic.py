"""Tests for magic-set rewriting (the [44] direction, Section 6(3))."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.datalog import DatalogProgram
from repro.core.generalized import GeneralizedDatabase
from repro.core.magic import MagicQuery, answer_magic_query, magic_rewrite
from repro.errors import EvaluationError
from repro.logic.parser import parse_rules
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def two_chains_db():
    """Two disjoint chains: 0..5 and 100..105."""
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(5):
        edge.add_point([i, i + 1])
        edge.add_point([100 + i, 101 + i])
    return db


class TestRewrite:
    def test_structure(self):
        rules = parse_rules(TC_RULES, theory=order)
        query = MagicQuery("T", 2, {0: 1})
        rewritten, answer = magic_rewrite(rules, query, order)
        assert answer == "T__bf"
        names = {r.head.name for r in rewritten}
        assert "T__bf" in names
        assert "_magic_T_bf" in names

    def test_negation_rejected(self):
        rules = parse_rules("S(x) :- V(x), not R(x).", theory=order)
        with pytest.raises(EvaluationError):
            magic_rewrite(rules, MagicQuery("S", 1, {0: 1}), order)

    def test_non_idb_rejected(self):
        rules = parse_rules(TC_RULES, theory=order)
        with pytest.raises(EvaluationError):
            magic_rewrite(rules, MagicQuery("E", 2, {0: 1}), order)


class TestSemantics:
    def test_matches_direct_evaluation(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        answers = answer_magic_query(rules, MagicQuery("T", 2, {0: 0}), db)
        direct_world, _ = DatalogProgram(rules, order).evaluate(db)
        direct = direct_world.relation("T")
        for a in list(range(7)) + list(range(100, 107)):
            for b in list(range(7)) + list(range(100, 107)):
                point = [Fraction(0), Fraction(b)]
                # answers are the bound selection of T
                expected = direct.contains_values(point)
                assert answers.contains_values(point) == expected, point
                if a != 0:
                    assert not answers.contains_values([Fraction(a), Fraction(b)])

    def test_irrelevant_facts_not_derived(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        query = MagicQuery("T", 2, {0: 0})
        rewritten, answer_name = magic_rewrite(rules, query, order)
        world = db.copy()
        seed = world.create_relation("_magic_T_bf", ("_m0",))
        seed.add_point([0])
        result_world, stats = DatalogProgram(rewritten, order).evaluate(world)
        adorned = result_world.relation(answer_name)
        # only the first chain is explored: 5 reachability facts, none >= 100
        assert len(adorned) == 5
        assert not adorned.contains_values([Fraction(100), Fraction(101)])

    def test_magic_fewer_firings_than_full(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        # full evaluation
        _, full_stats = DatalogProgram(rules, order).evaluate(db)
        # magic evaluation
        query = MagicQuery("T", 2, {0: 0})
        rewritten, _ = magic_rewrite(rules, query, order)
        world = db.copy()
        world.create_relation("_magic_T_bf", ("_m0",)).add_point([0])
        _, magic_stats = DatalogProgram(rewritten, order).evaluate(world)
        assert magic_stats.tuples_added < full_stats.tuples_added

    def test_free_query_reduces_to_full(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_edges(4)
        answers = answer_magic_query(rules, MagicQuery("T", 2, {}), db)
        direct_world, _ = DatalogProgram(rules, order).evaluate(db)
        direct = direct_world.relation("T")
        for a in range(5):
            for b in range(5):
                point = [Fraction(a), Fraction(b)]
                assert answers.contains_values(point) == direct.contains_values(point)

    def test_second_argument_bound(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_edges(4)
        answers = answer_magic_query(rules, MagicQuery("T", 2, {1: 4}), db)
        assert answers.contains_values([Fraction(0), Fraction(4)])
        assert answers.contains_values([Fraction(3), Fraction(4)])
        assert not answers.contains_values([Fraction(0), Fraction(3)])
