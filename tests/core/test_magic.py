"""Tests for magic-set rewriting (the [44] direction, Section 6(3))."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram
from repro.core.generalized import GeneralizedDatabase
from repro.core.magic import (
    SLOT,
    Binding,
    MagicQuery,
    answer_magic_query,
    magic_plan,
    magic_rewrite,
    parse_goal,
    seed_world,
    select_answers,
)
from repro.errors import EvaluationError
from repro.logic.parser import parse_rules
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def two_chains_db():
    """Two disjoint chains: 0..5 and 100..105."""
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(5):
        edge.add_point([i, i + 1])
        edge.add_point([100 + i, 101 + i])
    return db


class TestRewrite:
    def test_structure(self):
        rules = parse_rules(TC_RULES, theory=order)
        query = MagicQuery("T", 2, {0: 1})
        rewritten, answer = magic_rewrite(rules, query, order)
        assert answer == "T__bf"
        names = {r.head.name for r in rewritten}
        assert "T__bf" in names
        assert "_magic_T_bf" in names

    def test_negation_rejected(self):
        rules = parse_rules("S(x) :- V(x), not R(x).", theory=order)
        with pytest.raises(EvaluationError):
            magic_rewrite(rules, MagicQuery("S", 1, {0: 1}), order)

    def test_non_idb_rejected(self):
        rules = parse_rules(TC_RULES, theory=order)
        with pytest.raises(EvaluationError):
            magic_rewrite(rules, MagicQuery("E", 2, {0: 1}), order)


class TestSemantics:
    def test_matches_direct_evaluation(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        answers = answer_magic_query(rules, MagicQuery("T", 2, {0: 0}), db)
        direct_world, _ = DatalogProgram(rules, order).evaluate(db)
        direct = direct_world.relation("T")
        for a in list(range(7)) + list(range(100, 107)):
            for b in list(range(7)) + list(range(100, 107)):
                point = [Fraction(0), Fraction(b)]
                # answers are the bound selection of T
                expected = direct.contains_values(point)
                assert answers.contains_values(point) == expected, point
                if a != 0:
                    assert not answers.contains_values([Fraction(a), Fraction(b)])

    def test_irrelevant_facts_not_derived(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        query = MagicQuery("T", 2, {0: 0})
        rewritten, answer_name = magic_rewrite(rules, query, order)
        world = db.copy()
        seed = world.create_relation("_magic_T_bf", ("_m0",))
        seed.add_point([0])
        result_world, stats = DatalogProgram(rewritten, order).evaluate(world)
        adorned = result_world.relation(answer_name)
        # only the first chain is explored: 5 reachability facts, none >= 100
        assert len(adorned) == 5
        assert not adorned.contains_values([Fraction(100), Fraction(101)])

    def test_magic_fewer_firings_than_full(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        # full evaluation
        _, full_stats = DatalogProgram(rules, order).evaluate(db)
        # magic evaluation
        query = MagicQuery("T", 2, {0: 0})
        rewritten, _ = magic_rewrite(rules, query, order)
        world = db.copy()
        world.create_relation("_magic_T_bf", ("_m0",)).add_point([0])
        _, magic_stats = DatalogProgram(rewritten, order).evaluate(world)
        assert magic_stats.tuples_added < full_stats.tuples_added

    def test_free_query_reduces_to_full(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_edges(4)
        answers = answer_magic_query(rules, MagicQuery("T", 2, {}), db)
        direct_world, _ = DatalogProgram(rules, order).evaluate(db)
        direct = direct_world.relation("T")
        for a in range(5):
            for b in range(5):
                point = [Fraction(a), Fraction(b)]
                assert answers.contains_values(point) == direct.contains_values(point)

    def test_second_argument_bound(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_edges(4)
        answers = answer_magic_query(rules, MagicQuery("T", 2, {1: 4}), db)
        assert answers.contains_values([Fraction(0), Fraction(4)])
        assert answers.contains_values([Fraction(3), Fraction(4)])
        assert not answers.contains_values([Fraction(0), Fraction(3)])


class TestBinding:
    def test_equal_is_the_classical_binding(self):
        binding = Binding.equal(order, 3)
        assert binding.atoms == (order.equality(SLOT, order.constant(3)),)

    def test_interval_endpoints(self):
        binding = Binding.interval(1, 4, strict_high=True)
        assert binding.atoms == (le(1, SLOT), lt(SLOT, 4))
        low, high = binding.bounds(order)
        assert (low, high) == (Fraction(1), Fraction(4))

    def test_interval_needs_an_endpoint(self):
        with pytest.raises(EvaluationError):
            Binding.interval()

    def test_of_renames_onto_slot(self):
        binding = Binding.of("x", [lt(0, "x"), lt("x", 2)])
        assert binding.atoms == (lt(0, SLOT), lt(SLOT, 2))

    def test_multi_variable_atom_rejected(self):
        with pytest.raises(EvaluationError):
            Binding((lt("x", "y"),))

    def test_unsatisfiable_binding_has_no_canonical_key(self):
        binding = Binding((lt(SLOT, 0), lt(1, SLOT)))
        assert binding.canonical_key(order) is None
        assert Binding.equal(order, 3).canonical_key(order) is not None


class TestParseGoal:
    def test_constant_becomes_equality_binding(self):
        query = parse_goal("T(0, y)", order)
        assert query.predicate == "T"
        assert query.adornment == "bf"
        assert set(query.bindings) == {0}

    def test_interval_constraints_become_bindings(self):
        query = parse_goal("T(x, y), 3 < x, x < 5", order)
        assert query.adornment == "bf"
        low, high = query.bindings[0].bounds(order)
        assert (low, high) == (Fraction(3), Fraction(5))

    def test_repeated_variable_becomes_equalities(self):
        query = parse_goal("T(x, x)", order)
        assert query.equalities
        # a repeated free variable alone binds nothing
        assert query.adornment == "ff"
        # ...but binding one position propagates to its equality class
        bound = MagicQuery("T", 2, {0: 1}, equalities=query.equalities)
        assert bound.adornment == "bb"

    def test_two_position_constraint_goes_to_residual(self):
        query = parse_goal("T(x, y), x < y, y < 4", order)
        assert query.adornment == "fb"
        assert len(query.residual) == 1

    def test_loose_variable_rejected(self):
        with pytest.raises(EvaluationError):
            parse_goal("T(x, y), z < 3", order)

    def test_two_relation_atoms_rejected(self):
        with pytest.raises(EvaluationError):
            parse_goal("T(x, y), E(y, z)", order)


NEGATION_RULES = """
T(x, y) :- E(x, y).
T(x, z) :- E(x, y), T(y, z).
U(x, y) :- V(x), V(y), not T(x, y).
W(x) :- U(x, y).
"""


class TestPlanning:
    def test_all_free_returns_original_rules(self):
        rules = parse_rules(TC_RULES, theory=order)
        plan = magic_plan(rules, MagicQuery("T", 2, {}), order)
        # verbatim rule sharing keeps one compiled plan with plain evaluate
        assert plan.rules == list(rules)
        assert plan.answer == "T"
        assert plan.seed_name is None
        assert not plan.full_fallback

    def test_negation_reachable_from_query_falls_back_partially(self):
        rules = parse_rules(NEGATION_RULES, theory=order)
        plan = magic_plan(rules, MagicQuery("W", 1, {0: 1}), order)
        assert not plan.full_fallback
        assert plan.fallback_predicates == ("T", "U")
        heads = {rule.head.name for rule in plan.rules}
        # U's cone is carried over untouched, W is still magic-restricted
        # (its guard is fed by the seed relation, not by a magic rule)
        assert heads == {"T", "U", "W__b"}
        assert plan.seed_name == "_magic_W_b"

    def test_query_inside_negation_cone_degrades_to_full(self):
        rules = parse_rules(NEGATION_RULES, theory=order)
        plan = magic_plan(rules, MagicQuery("T", 2, {0: 1}, residual=()), order)
        # T is negated in U's body, but U is unreachable *from T*, so the
        # rewrite must not fall back...
        assert not plan.full_fallback
        plan_u = magic_plan(rules, MagicQuery("U", 2, {0: 1}), order)
        # ...while U itself (head of the negated rule) is a full fallback
        assert plan_u.full_fallback
        assert "U" in plan_u.fallback_predicates

    def test_inflationary_negation_degrades_to_full(self):
        rules = parse_rules(NEGATION_RULES, theory=order)
        plan = magic_plan(
            rules, MagicQuery("W", 1, {0: 1}), order, semantics="inflationary"
        )
        assert plan.full_fallback

    def test_partial_fallback_matches_full_then_filter(self):
        rules = parse_rules(NEGATION_RULES, theory=order)
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(3):
            edge.add_point([i, i + 1])
        vertex = db.create_relation("V", ("x",))
        for i in range(5):
            vertex.add_point([i])
        query = MagicQuery("W", 1, {0: 4})
        plan = magic_plan(rules, query, order)
        world = seed_world(db, plan, query)
        result_world, _ = DatalogProgram(plan.rules, order).evaluate(world)
        answers = select_answers(result_world.relation(plan.answer), query, order)
        full_world, _ = DatalogProgram(rules, order).evaluate(db)
        expected = select_answers(full_world.relation("W"), query, order)
        assert frozenset(answers.keys()) == frozenset(expected.keys())

    def test_unsatisfiable_binding_yields_empty_answer(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_edges(4)
        query = MagicQuery(
            "T", 2, {0: Binding((lt(SLOT, 0), lt(1, SLOT)))}
        )
        answers = answer_magic_query(rules, query, db)
        assert len(answers) == 0

    def test_interval_binding_restricts_cone(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = two_chains_db()
        query = MagicQuery(
            "T", 2, {0: Binding.interval(100, 200)}
        )
        answers = answer_magic_query(rules, query, db)
        assert answers.contains_values([Fraction(100), Fraction(105)])
        assert not answers.contains_values([Fraction(0), Fraction(1)])
        full_world, _ = DatalogProgram(rules, order).evaluate(db)
        expected = select_answers(full_world.relation("T"), query, order)
        assert frozenset(answers.keys()) == frozenset(expected.keys())
