"""The rule compiler: PlanCache lifecycle, IR rendering, budget parity.

The equivalence matrix (compiled vs. interpreted fixpoints across theories
and semantics) lives in ``test_compile_equivalence.py``; this module covers
the cache machinery itself -- the prepared-query pattern the server relies
on -- plus the lowered-IR pretty printer and the budget-tick contract.
"""

from dataclasses import replace

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core.compile import PLAN_CACHE, PlanCache, render_plan
from repro.core.datalog import DatalogProgram, EngineOptions, EvaluationStats
from repro.core.generalized import GeneralizedDatabase
from repro.errors import BudgetExceededError
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


@pytest.fixture(autouse=True)
def _fresh_cache():
    PLAN_CACHE.clear()
    yield
    PLAN_CACHE.clear()


def _chain_db(theory, n):
    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        edge.add_point([i, i + 1])
    return db


def _program(theory, options=None, rules_text=TC_RULES):
    rules = parse_rules(rules_text, theory=theory)
    return DatalogProgram(rules, theory, options=options or EngineOptions.all_on())


class TestPlanCache:
    def test_cold_then_warm(self):
        theory = DenseOrderTheory()
        program = _program(theory)
        _, cold = program.evaluate(_chain_db(theory, 4))
        assert (cold.compile_hits, cold.compile_misses) == (0, 1)
        assert cold.compiled_rules > 0  # variants were lowered
        _, warm = program.evaluate(_chain_db(theory, 4))
        assert (warm.compile_hits, warm.compile_misses) == (1, 0)
        assert warm.compiled_rules == 0  # nothing re-lowered on a hit
        assert PLAN_CACHE.stats()["entries"] == 1

    def test_warm_across_program_objects(self):
        # the shell re-parses rules on every .run: a *different*
        # DatalogProgram with the same rule text, schema, options, and
        # theory instance must hit the same cache entry
        theory = DenseOrderTheory()
        _program(theory).evaluate(_chain_db(theory, 4))
        _, stats = _program(theory).evaluate(_chain_db(theory, 4))
        assert (stats.compile_hits, stats.compile_misses) == (1, 0)
        assert PLAN_CACHE.stats()["entries"] == 1

    def test_rule_edit_recompiles(self):
        theory = DenseOrderTheory()
        _program(theory).evaluate(_chain_db(theory, 4))
        edited = TC_RULES + "U(x) :- T(x, y).\n"
        _, stats = _program(theory, rules_text=edited).evaluate(
            _chain_db(theory, 4)
        )
        assert (stats.compile_hits, stats.compile_misses) == (0, 1)
        assert stats.compiled_rules > 0
        assert PLAN_CACHE.stats()["entries"] == 2  # both programs cached

    def test_theory_instance_keys_the_entry(self):
        # constraint theories carry mutable solver caches, so compiled
        # closures are only valid for the instance they closed over
        a, b = DenseOrderTheory(), DenseOrderTheory()
        _program(a).evaluate(_chain_db(a, 4))
        _, stats = _program(b).evaluate(_chain_db(b, 4))
        assert (stats.compile_hits, stats.compile_misses) == (0, 1)

    def test_options_change_invalidates_stale_closures(self):
        # the stale-closure hazard: closures bake in probe/filter choices,
        # so an EngineOptions change between evaluations must evict and
        # re-lower, never reuse
        theory = DenseOrderTheory()
        on = EngineOptions.all_on()
        off_probes = replace(on, index_probes=False)
        _program(theory, on).evaluate(_chain_db(theory, 4))
        _, stats = _program(theory, off_probes).evaluate(_chain_db(theory, 4))
        assert stats.compile_invalidations == 1
        assert (stats.compile_hits, stats.compile_misses) == (0, 1)
        # the stale all_on entry was evicted, not kept alongside
        assert PLAN_CACHE.stats()["entries"] == 1
        # steady state under the new options is a plain hit again
        _, again = _program(theory, off_probes).evaluate(_chain_db(theory, 4))
        assert (again.compile_hits, again.compile_invalidations) == (1, 0)
        # and flipping back invalidates once more
        _, back = _program(theory, on).evaluate(_chain_db(theory, 4))
        assert back.compile_invalidations == 1

    def test_compile_rules_off_bypasses_cache(self):
        theory = DenseOrderTheory()
        options = replace(EngineOptions.all_on(), compile_rules=False)
        _, stats = _program(theory, options).evaluate(_chain_db(theory, 4))
        assert stats.compile_misses == 0 and stats.compiled_firings == 0
        assert PLAN_CACHE.stats()["entries"] == 0

    def test_all_off_disables_compilation(self):
        theory = DenseOrderTheory()
        _, stats = _program(theory, EngineOptions.all_off()).evaluate(
            _chain_db(theory, 4)
        )
        assert stats.compiled_firings == 0 and stats.fastpath_leaves == 0

    def test_lru_bound(self):
        cache = PlanCache(maxsize=2)
        theory = DenseOrderTheory()
        programs = [
            _program(theory, rules_text=TC_RULES + f"U{i}(x) :- T(x, y).\n")
            for i in range(3)
        ]
        for program in programs:
            cache.fetch(program)
        assert len(cache) == 2
        # the oldest entry was evicted: fetching it again is a miss
        _, hit, _ = cache.fetch(programs[0])
        assert not hit
        _, hit, _ = cache.fetch(programs[2])
        assert hit


class TestCompiledFiringStats:
    def test_compiled_firings_and_fastpath_counted(self):
        theory = DenseOrderTheory()
        world, stats = _program(theory).evaluate(_chain_db(theory, 6))
        assert stats.compiled_firings > 0
        # a ground chain is all-points: every derived tuple takes the
        # point-emit leaf, skipping quantifier elimination entirely
        assert stats.fastpath_leaves == stats.tuples_derived > 0
        assert len(world.relation("T")) == 6 * 7 // 2

    def test_equality_theory_also_fastpaths(self):
        theory = EqualityTheory()
        _, stats = _program(theory).evaluate(_chain_db(theory, 5))
        assert stats.fastpath_leaves > 0


class TestStatsMerge:
    def test_merge_folds_compiler_counters(self):
        a, b = EvaluationStats(), EvaluationStats()
        for stats, base in ((a, 1), (b, 10)):
            stats.compile_hits = base
            stats.compile_misses = base + 1
            stats.compile_invalidations = base + 2
            stats.compiled_rules = base + 3
            stats.compiled_firings = base + 4
            stats.fastpath_leaves = base + 5
            stats.compile_seconds = base / 10
        a.merge(b)
        assert a.compile_hits == 11
        assert a.compile_misses == 13
        assert a.compile_invalidations == 15
        assert a.compiled_rules == 17
        assert a.compiled_firings == 19
        assert a.fastpath_leaves == 21
        assert a.compile_seconds == pytest.approx(1.1)

    def test_as_dict_exposes_compiler_counters(self):
        exposed = EvaluationStats().as_dict()
        for key in (
            "compile_hits",
            "compile_misses",
            "compile_invalidations",
            "compiled_rules",
            "compiled_firings",
            "fastpath_leaves",
            "compile_seconds",
        ):
            assert key in exposed


class TestRenderPlan:
    def test_render_shows_order_steps_and_leaf(self):
        theory = DenseOrderTheory()
        program = _program(theory)
        world, _ = program.evaluate(_chain_db(theory, 4))
        text = render_plan(program, program.rules[1], world)
        assert "rule: T(x, y) :- T(x, z), E(z, y)" in text
        assert "order: [" in text
        assert "step 0:" in text and "step 1:" in text
        assert "leaf:" in text
        assert "sizes: T=10, E=4" in text

    def test_planner_off_keeps_program_order(self):
        theory = DenseOrderTheory()
        options = replace(EngineOptions.all_on(), join_planner=False)
        program = _program(theory, options)
        text = render_plan(program, program.rules[1], None)
        assert "order: [0, 1]" in text

    def test_planner_reorders_on_live_sizes(self):
        # E is tiny, T huge after closure over a denser graph: the greedy
        # planner starts from the smaller relation
        theory = DenseOrderTheory()
        program = _program(theory)
        world, _ = program.evaluate(_chain_db(theory, 8))
        assert len(world.relation("T")) > len(world.relation("E"))
        text = render_plan(program, program.rules[1], world)
        assert "order: [1, 0]" in text  # E (position 1) scans first


class TestBudgetTickParity:
    """Compiled loops tick the shared meter exactly like interpreted ones."""

    def _trip(self, budget, compile_rules):
        theory = DenseOrderTheory()
        options = replace(
            EngineOptions.all_on(), budget=budget, compile_rules=compile_rules
        )
        with pytest.raises(BudgetExceededError) as info:
            _program(theory, options).evaluate(_chain_db(theory, 20))
        return info.value.report

    @pytest.mark.parametrize(
        "budget",
        [Budget(joins=17), Budget(tuples=9), Budget(rounds=3)],
        ids=["joins", "tuples", "rounds"],
    )
    def test_same_trip_counts(self, budget):
        compiled = self._trip(budget, compile_rules=True)
        interpreted = self._trip(budget, compile_rules=False)
        assert compiled.budget_kind == interpreted.budget_kind
        assert compiled.counts == interpreted.counts
