"""Tests for r-configurations and EVAL-phi (Section 3.1, Lemmas 3.6-3.13)."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt
from repro.core.calculus import evaluate_calculus
from repro.core.generalized import GeneralizedDatabase
from repro.core.rconfig import (
    boolean_eval,
    enumerate_rconfigs,
    evaluate_query_rconfig,
    extensions,
    rconfig_of_point,
    to_primitive,
)
from repro.logic.parser import parse_query
from repro.logic.syntax import Exists, Not, RelationAtom

order = DenseOrderTheory()

CONSTANTS = [Fraction(0), Fraction(1), Fraction(2), Fraction(3)]


class TestExample32:
    """Example 3.2 of the paper, verbatim."""

    def test_example_sequence(self):
        point = [Fraction(1, 2), Fraction(7, 2), Fraction(3, 2), Fraction(3, 2), Fraction(2)]
        config = rconfig_of_point(point, CONSTANTS)
        assert config.f == (1, 4, 2, 2, 3)
        assert config.l == (Fraction(0), Fraction(3), Fraction(1), Fraction(1), Fraction(2))
        assert config.u == (Fraction(1), None, Fraction(2), Fraction(2), Fraction(2))


class TestPartition:
    """Lemmas 3.7 and 3.8: r-configurations partition D^n."""

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.fractions(min_value=-5, max_value=5), min_size=1, max_size=3))
    def test_unique_configuration_per_point(self, values):
        point = list(values)
        config = rconfig_of_point(point, CONSTANTS)
        assert config.satisfied_by(point)
        # uniqueness: no other enumerated configuration contains the point
        matches = [
            c
            for c in enumerate_rconfigs(len(point), CONSTANTS)
            if c.satisfied_by(point)
        ]
        assert matches == [config]

    def test_every_configuration_nonempty(self):
        # Lemma 3.7: every configuration has a satisfying point
        for config in enumerate_rconfigs(2, [Fraction(0), Fraction(1)]):
            point = config.sample_point()
            assert config.satisfied_by(point), (config, point)

    def test_enumeration_counts_grow_polynomially(self):
        # for fixed n the number of configurations is polynomial in the
        # constants (the heart of the data-complexity argument)
        counts = []
        for c in (1, 2, 4, 8):
            constants = [Fraction(i) for i in range(c)]
            counts.append(sum(1 for _ in enumerate_rconfigs(1, constants)))
        # size-1 configurations: one per constant + one per gap = 2c + 1
        assert counts == [3, 5, 9, 17]


class TestExtensions:
    """Lemma 3.6: extensions cover exactly the projections."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.fractions(min_value=-4, max_value=4), min_size=1, max_size=2),
        st.fractions(min_value=-4, max_value=4),
    )
    def test_extension_exists_for_extended_point(self, values, extra):
        config = rconfig_of_point(values, CONSTANTS)
        extended_point = list(values) + [extra]
        matching = [
            ext
            for ext in extensions(config, CONSTANTS)
            if ext.satisfied_by(extended_point)
        ]
        assert len(matching) == 1

    def test_projection_inverts_extension(self):
        config = rconfig_of_point([Fraction(1, 2)], CONSTANTS)
        for ext in extensions(config, CONSTANTS):
            assert ext.project([0]) == config


class TestBooleanEval:
    def test_atom_cases(self):
        # configuration: x in (0, 1)
        config = rconfig_of_point([Fraction(1, 2)], CONSTANTS)
        formula = to_primitive(lt("x", 1))
        assert boolean_eval(formula, config, ("x",), CONSTANTS)
        formula2 = to_primitive(lt("x", 0))
        assert not boolean_eval(formula2, config, ("x",), CONSTANTS)
        # indeterminate on the configuration -> F(xi) -> psi is not valid
        # x < 1/2 splits the cell only if 1/2 were a constant; it is not in
        # D_phi here so the formula would be malformed -- skip.

    def test_exists(self):
        # exists y: x < y and y < 1, over cell x in (0,1): true by density
        config = rconfig_of_point([Fraction(1, 2)], CONSTANTS)
        formula = to_primitive(
            Exists(("y",), lt("x", "y") & lt("y", 1))
        )
        assert boolean_eval(formula, config, ("x",), CONSTANTS)
        # exists y: y < x and 1 < y: false on this cell
        formula2 = to_primitive(Exists(("y",), lt("y", "x") & lt(1, "y")))
        assert not boolean_eval(formula2, config, ("x",), CONSTANTS)


class TestEvalPhi:
    def _db(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x",))
        r.add_tuple([le(0, "x"), le("x", 2)])
        r.add_tuple([eq("x", 5)])
        return db

    def test_matches_direct_evaluator_simple(self):
        db = self._db()
        query = parse_query("R(x) and x < 1", theory=order)
        via_rconfig = evaluate_query_rconfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in [Fraction(-1), Fraction(0), Fraction(1, 2), Fraction(1),
                      Fraction(3, 2), Fraction(5)]:
            assert via_rconfig.contains_values([value]) == via_direct.contains_values(
                [value]
            ), value

    def test_matches_direct_evaluator_quantified(self):
        db = GeneralizedDatabase(order)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([lt("x", "y"), lt("y", 3)])
        r.add_point([5, 7])
        query = parse_query("exists y . R(x, y) and x < y", theory=order)
        via_rconfig = evaluate_query_rconfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in [Fraction(v, 2) for v in range(-4, 17)]:
            assert via_rconfig.contains_values([value]) == via_direct.contains_values(
                [value]
            ), value

    def test_negation(self):
        db = self._db()
        query = Not(RelationAtom("R", ("x",)))
        via_rconfig = evaluate_query_rconfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in [Fraction(v, 2) for v in range(-3, 13)]:
            assert via_rconfig.contains_values([value]) == via_direct.contains_values(
                [value]
            ), value

    def test_closed_form_output(self):
        # the output is a generalized relation over dense-order atoms
        db = self._db()
        query = parse_query("R(x)", theory=order)
        result = evaluate_query_rconfig(query, db)
        assert result.contains_values([Fraction(1)])
        assert not result.contains_values([Fraction(3)])
