"""Tests for the interactive shell (driven programmatically)."""

import io

from repro.cli import Shell


def run(lines):
    out = io.StringIO()
    shell = Shell(out=out)
    for line in lines:
        if not shell.handle(line):
            break
    return out.getvalue()


class TestShell:
    def test_help_and_quit(self):
        output = run([".help", ".quit"])
        assert ".theory" in output

    def test_rectangle_session(self):
        output = run([
            ".theory dense_order",
            ".relation R(n, x)",
            ".tuple R: n = 1 and 0 <= x and x <= 4",
            ".point R: 2, 9",
            ".query exists x . R(n, x) and x < 2",
            ".show R",
            ".list",
        ])
        assert "relation R/2 created" in output
        assert "tuple added" in output
        assert "point added" in output
        assert "n = 1" in output  # query result contains user 1
        assert "R/2: 2 tuples" in output

    def test_datalog_session(self):
        output = run([
            ".relation E(x, y)",
            ".point E: 1, 2",
            ".point E: 2, 3",
            ".rule T(x, y) :- E(x, y).",
            ".rule T(x, y) :- T(x, z), E(z, y).",
            ".run",
        ])
        assert "fixpoint" in output
        assert "T(" in output

    def test_theory_switch_resets(self):
        output = run([
            ".relation R(x)",
            ".theory equality",
            ".list",
        ])
        assert "theory set to equality" in output
        assert "R/1" not in output.split("theory set to equality")[1]

    def test_errors_reported_not_raised(self):
        output = run([
            ".show Nope",
            ".tuple R: x < 1",
            ".query R(x",
            ".theory bogus",
            ".bogus",
        ])
        assert output.count("error:") >= 3
        assert "unknown theory" in output
        assert "unknown command" in output

    def test_point_with_string_values(self):
        output = run([
            ".theory equality",
            ".relation Color(item, hue)",
            ".point Color: apple, red",
            ".query exists item . Color(item, hue)",
        ])
        assert "point added" in output

    def test_run_without_rules(self):
        assert "no rules" in run([".run"])


class TestEngineCommand:
    def test_show_defaults(self):
        output = run([".engine"])
        assert "join_planner=on" in output
        assert "index_probes=on" in output
        assert "parallel=on" in output

    def test_toggle_and_run(self):
        output = run([
            ".engine index_probes=off parallel=off",
            ".engine",
            ".relation E(x, y)",
            ".point E: 0, 1",
            ".point E: 1, 2",
            ".rule T(x, y) :- E(x, y).",
            ".rule T(x, y) :- T(x, z), E(z, y).",
            ".run",
        ])
        assert "index_probes=off" in output
        assert "parallel=off" in output
        assert "fixpoint in" in output

    def test_all_off_and_all_on(self):
        output = run([".engine all_off", ".engine all_on"])
        assert "theory_cache=off" in output
        assert output.count("join_planner=on") == 1

    def test_bad_flag_reports_usage(self):
        output = run([".engine warp_drive=on"])
        assert "usage: .engine" in output

    def test_reports_plan_cache_state(self):
        from repro.core.compile import PLAN_CACHE

        PLAN_CACHE.clear()
        output = run([
            ".relation E(x, y)",
            ".point E: 1, 2",
            ".rule T(x, y) :- E(x, y).",
            ".run",
            ".run",
            ".engine",
        ])
        assert "compile_rules=on" in output
        assert "plan cache: 1 compiled program(s)" in output
        # first .run misses, second hits the prepared-query cache
        assert "1 hits, 1 misses" in output


class TestPlanCommand:
    _SESSION = [
        ".relation E(x, y)",
        ".relation T(x, y)",
        ".point E: 1, 2",
        ".point E: 2, 3",
        ".rule T(x, y) :- E(x, y).",
        ".rule T(x, y) :- T(x, z), E(z, y).",
    ]

    def test_plan_by_head_name_prints_all_matching_rules(self):
        output = run([*self._SESSION, ".plan T"])
        assert output.count("rule: T(") == 2
        assert "order: [0]" in output
        assert "step 0:" in output and "step 1:" in output
        assert "sizes: " in output

    def test_plan_by_index(self):
        output = run([*self._SESSION, ".plan 2"])
        assert output.count("rule: T(") == 1
        assert "T(x, z)" in output

    def test_plan_uses_live_sizes_for_tie_breaks(self):
        # T is empty before .run, populated after: the rendered sizes line
        # (the planner's greedy inputs) must track the live database
        before = run([*self._SESSION, ".plan 2"])
        after = run([*self._SESSION, ".run", ".plan 2"])
        assert "T=0" in before
        assert "T=3" in after

    def test_plan_errors(self):
        assert "no rules" in run([".plan T"])
        output = run([*self._SESSION, ".plan Q", ".plan 9", ".plan"])
        assert "no rule with head 'Q'" in output
        assert "out of range" in output
        assert "usage: .plan" in output


class TestViewCommand:
    _SESSION = [
        ".relation E(x, y)",
        ".point E: 0, 1",
        ".point E: 1, 2",
        ".rule T(x, y) :- E(x, y).",
        ".rule T(x, y) :- T(x, z), E(z, y).",
    ]

    def test_view_lifecycle(self):
        output = run([
            *self._SESSION,
            ".view on",
            ".insert E: x = 2 and y = 3",
            ".view",
            ".view off",
        ])
        assert "mode=incremental" in output
        assert "insert applied: +3/-0 derived" in output
        assert "view dropped" in output

    def test_retract_rederives_and_reports(self):
        output = run([
            *self._SESSION,
            ".view on",
            ".retract E: x = 0 and y = 1",
            ".show T",
        ])
        assert "retract applied: +0/-2 derived" in output
        assert "_0 = 0" not in output.split("retract applied")[1]

    def test_noop_deltas_reported(self):
        output = run([
            *self._SESSION,
            ".view on",
            ".retract E: x = 9 and y = 9",
            ".insert E: x = 0 and y = 1",
        ])
        assert "no-op (retract of a missing tuple)" in output
        assert "no-op (insert of a present tuple)" in output

    def test_view_blocks_direct_mutation(self):
        output = run([
            *self._SESSION,
            ".view on",
            ".point E: 7, 8",
            ".tuple E: x = 7 and y = 8",
            ".relation F(x)",
            ".rule U(x) :- E(x, y).",
            ".run",
        ])
        assert output.count("a live view is registered") == 4
        assert "already maintains the fixpoint" in output

    def test_view_usage_and_guards(self):
        output = run([
            ".view",
            ".insert E: x = 1 and y = 2",
            ".view banana",
            ".view off",
            ".view refresh",
            ".rule T(x, y) :- E(x, y).",
            ".view on",  # E does not exist yet -> shell error, not a crash
        ])
        assert "no view registered" in output
        assert "usage: .view" in output
        assert ".view on enables .insert" in output

    def test_refresh_after_budget_trip(self):
        output = run([
            ".relation E(x, y)",
            ".point E: 0, 1",
            ".rule T(x, y) :- E(x, y).",
            ".rule T(x, y) :- T(x, z), E(z, y).",
            ".budget tuples=4 fringe",
            ".view on",
            ".point E: 1, 2",  # blocked (view active) -- state unchanged
            ".insert E: x = 1 and y = 2",
            ".insert E: x = 2 and y = 0",  # cycle: blows the 4-tuple budget
            ".view",
            ".insert E: x = 5 and y = 6",  # stale -> shell error line
            ".budget off",
            ".view refresh",
        ])
        assert "STALE" in output
        assert "error:" in output  # StaleViewError surfaced as a shell error


class TestWorkersCommand:
    def test_workers_toggle_and_engine_report(self):
        output = run([".workers 2", ".engine", ".workers 0", ".engine"])
        assert "sharding on" in output
        assert "cluster: sharded over 2 worker process(es)" in output
        assert "sharding off" in output
        assert "cluster: off (in-process evaluation)" in output

    def test_workers_usage(self):
        output = run([".workers", ".workers nope", ".workers -3"])
        assert output.count("usage: .workers N") == 3

    def test_sharded_run_reports_cluster_state(self):
        output = run([
            ".relation E(x, y)",
            ".point E: 1, 2",
            ".point E: 2, 3",
            ".point E: 3, 4",
            ".rule T(x, y) :- E(x, y).",
            ".rule T(x, y) :- T(x, z), E(z, y).",
            ".workers 2",
            ".run",
            ".engine",
        ])
        assert "sharded round(s)" in output
        assert "shard(s) dispatched" in output
        assert "workers [live, live]" in output

    def test_help_mentions_workers(self):
        output = run([".help"])
        assert ".workers N" in output


class TestMagicQueryRouting:
    SESSION = [
        ".relation E(x, y)",
        ".point E: 0, 1",
        ".point E: 1, 2",
        ".point E: 5, 6",
        ".rule T(x, y) :- E(x, y).",
        ".rule T(x, y) :- T(x, z), E(z, y).",
    ]

    def test_goal_routes_through_magic_without_run(self):
        output = run([*self.SESSION, ".query T(0, y)"])
        assert "2 answer(s) [T^bf" in output
        assert "magic rule(s)" in output
        assert "cone" in output

    def test_constraint_goal_binds_by_interval(self):
        output = run([*self.SESSION, ".query T(x, y), 4 < x, x < 6"])
        assert "1 answer(s) [T^bf" in output

    def test_magic_toggle_switches_to_oracle(self):
        output = run([
            *self.SESSION,
            ".engine magic=off",
            ".query T(0, y)",
            ".engine",
        ])
        assert "full fixpoint (magic off)" in output
        assert "query path: magic off (full-fixpoint oracle)" in output

    def test_quantified_queries_keep_the_calculus_path(self):
        output = run([*self.SESSION, ".query exists y . T(0, y) and y < 2"])
        # the calculus path answers over the *current database* (no rules
        # run), so the magic status line must not appear
        assert "cone" not in output

    def test_edb_goal_keeps_the_calculus_path(self):
        output = run([*self.SESSION, ".query E(0, y)"])
        assert "cone" not in output
        assert "y = 1" in output

    def test_view_goal_queries_live_edb(self):
        output = run([
            *self.SESSION,
            ".view on",
            ".insert E: x = 2 and y = 3",
            ".query T(0, y)",
        ])
        assert "3 answer(s) [T^bf" in output

    def test_help_documents_goal_routing(self):
        output = run([".help"])
        assert "demand-driven (magic sets)" in output
