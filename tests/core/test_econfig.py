"""Tests for e-configurations and equality EVAL-phi (Section 4)."""

from hypothesis import given, settings, strategies as st

from repro.constraints.equality import EqualityTheory, ne
from repro.core.calculus import evaluate_calculus
from repro.core.econfig import (
    OTHER,
    econfig_of_point,
    enumerate_econfigs,
    evaluate_query_econfig,
    extensions,
)
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_query
from repro.logic.syntax import Not, RelationAtom

theory = EqualityTheory()
CONSTANTS = [1, 2]


class TestExample42:
    """Example 4.2 of the paper, verbatim."""

    def test_example_sequence(self):
        point = [1, 1, 2, 4, 2, 4, 3]
        config = econfig_of_point(point, CONSTANTS)
        # classes {1,2},{3,5},{4,6},{7} (0-indexed here)
        assert config.classes == (0, 0, 1, 2, 1, 2, 3)
        assert config.v == (1, 1, 2, OTHER, 2, OTHER, OTHER)


class TestPartition:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=3))
    def test_unique_configuration_per_point(self, point):
        config = econfig_of_point(point, CONSTANTS)
        assert config.satisfied_by(point, CONSTANTS)
        matches = [
            c
            for c in enumerate_econfigs(len(point), CONSTANTS)
            if c.satisfied_by(point, CONSTANTS)
        ]
        assert matches == [config]

    def test_every_configuration_nonempty(self):
        for config in enumerate_econfigs(2, CONSTANTS):
            point = config.sample_point()
            assert config.satisfied_by(point, CONSTANTS), config

    def test_counts(self):
        # size 1: classes trivial; tags = constants + OTHER
        assert sum(1 for _ in enumerate_econfigs(1, CONSTANTS)) == 3
        # size 2: either same class (3 tags) or two classes with compatible tags
        # two classes: tag pairs with distinct non-OTHER tags:
        # (1,2),(2,1),(1,o),(o,1),(2,o),(o,2),(o,o) = 7; plus same-class 3 = 10
        assert sum(1 for _ in enumerate_econfigs(2, CONSTANTS)) == 10


class TestExtensions:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=2),
        st.integers(0, 4),
    )
    def test_extension_exists_for_extended_point(self, point, extra):
        config = econfig_of_point(point, CONSTANTS)
        matching = [
            ext
            for ext in extensions(config, CONSTANTS)
            if ext.satisfied_by(list(point) + [extra], CONSTANTS)
        ]
        assert len(matching) == 1

    def test_projection_inverts(self):
        config = econfig_of_point([7], CONSTANTS)
        for ext in extensions(config, CONSTANTS):
            assert ext.project([0]) == config


class TestEvalPhi:
    def _db(self):
        db = GeneralizedDatabase(theory)
        r = db.create_relation("R", ("x",))
        r.add_point([1])
        r.add_point([2])
        return db

    def test_safe_query(self):
        db = self._db()
        query = parse_query("R(x)", theory=theory)
        via_econfig = evaluate_query_econfig(query, db)
        for value in (1, 2, 3, 99):
            assert via_econfig.contains_values([value]) == (value in (1, 2))

    def test_unsafe_query_closed(self):
        # the complement query has an infinite answer, still closed form
        db = self._db()
        query = Not(RelationAtom("R", ("x",)))
        via_econfig = evaluate_query_econfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in (1, 2, 3, 99):
            assert via_econfig.contains_values([value]) == via_direct.contains_values(
                [value]
            )

    def test_join_with_quantifier(self):
        db = GeneralizedDatabase(theory)
        r = db.create_relation("R", ("x", "y"))
        r.add_point([1, 2])
        r.add_point([2, 3])
        query = parse_query("exists y . R(x, y) and y != 2", theory=theory)
        via_econfig = evaluate_query_econfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in (1, 2, 3, 4):
            assert via_econfig.contains_values([value]) == via_direct.contains_values(
                [value]
            ), value

    def test_disequality_tuple_input(self):
        db = GeneralizedDatabase(theory)
        r = db.create_relation("R", ("x", "y"))
        r.add_tuple([ne("x", "y")])
        query = parse_query("exists y . R(x, y) and y = 1", theory=theory)
        via_econfig = evaluate_query_econfig(query, db)
        via_direct = evaluate_calculus(query, db)
        for value in (0, 1, 2):
            assert via_econfig.contains_values([value]) == via_direct.contains_values(
                [value]
            ), value
