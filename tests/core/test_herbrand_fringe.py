"""Tests for the Section 3.2 Herbrand machinery and Section 3.3 parallelism."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram
from repro.core.fringe import (
    RoundSynchronousEvaluator,
    is_piecewise_linear,
    linear_closure_rules,
    mutually_recursive_groups,
    squared_closure_rules,
)
from repro.core.generalized import GeneralizedDatabase
from repro.core.herbrand import HerbrandProgram, IDBAtom
from repro.errors import EvaluationError
from repro.logic.parser import parse_rules

order = DenseOrderTheory()


def chain_db(n):
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        edge.add_point([i, i + 1])
    return db


TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


class TestHerbrand:
    def test_least_fixpoint_matches_datalog_engine(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = chain_db(3)
        herbrand = HerbrandProgram(rules, db)
        fixpoint = herbrand.least_fixpoint()
        world = herbrand.as_relations(fixpoint)
        engine_world, _ = DatalogProgram(rules, order).evaluate(db)
        t_herbrand = world.relation("T")
        t_engine = engine_world.relation("T")
        # Theorem 3.20: same represented point sets
        for a in range(4):
            for b in range(4):
                point = [Fraction(a), Fraction(b)]
                assert t_herbrand.contains_values(point) == t_engine.contains_values(
                    point
                ), point

    def test_interval_edb(self):
        rules = parse_rules(TC_RULES, theory=order)
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        edge.add_tuple([le(0, "x"), lt("x", "y"), le("y", 1)])
        herbrand = HerbrandProgram(rules, db)
        world = herbrand.as_relations(herbrand.least_fixpoint())
        t = world.relation("T")
        assert t.contains_values([Fraction(0), Fraction(1)])
        assert t.contains_values([Fraction(1, 4), Fraction(1, 2)])
        assert not t.contains_values([Fraction(1), Fraction(0)])

    def test_tp_monotone(self):
        rules = parse_rules(TC_RULES, theory=order)
        herbrand = HerbrandProgram(rules, chain_db(2))
        empty: frozenset[IDBAtom] = frozenset()
        once = herbrand.tp(empty)
        twice = herbrand.tp(once)
        assert empty <= once <= twice

    def test_negation_rejected(self):
        rules = parse_rules("S(x) :- R(x), not T(x).", theory=order)
        with pytest.raises(EvaluationError):
            HerbrandProgram(rules, GeneralizedDatabase(order))


class TestPiecewiseLinear:
    def test_linear_closure_is_piecewise_linear(self):
        rules = linear_closure_rules("E", "T", order)
        assert is_piecewise_linear(rules)

    def test_squared_closure_is_not(self):
        rules = squared_closure_rules("E", "T", order)
        assert not is_piecewise_linear(rules)

    def test_mutual_recursion_groups(self):
        rules = parse_rules(
            """
            A(x) :- B(x).
            B(x) :- A(x).
            C(x) :- A(x).
            """,
            theory=order,
        )
        groups = mutually_recursive_groups(rules)
        assert {"A", "B"} in groups
        assert {"C"} in groups


class TestRoundsAndFringe:
    def test_linear_rounds_grow_linearly(self):
        rules = linear_closure_rules("E", "T", order)
        evaluator = RoundSynchronousEvaluator(rules, order)
        _, _, rounds_small = evaluator.evaluate(chain_db(4))
        _, _, rounds_large = evaluator.evaluate(chain_db(8))
        assert rounds_large >= rounds_small + 3  # ~linear growth

    def test_squared_rounds_grow_logarithmically(self):
        rules = squared_closure_rules("E", "T", order)
        evaluator = RoundSynchronousEvaluator(rules, order)
        _, _, rounds_8 = evaluator.evaluate(chain_db(8))
        _, _, rounds_16 = evaluator.evaluate(chain_db(16))
        assert rounds_16 <= rounds_8 + 2  # doubling: +1 round per doubling
        assert rounds_16 <= 7

    def test_squared_and_linear_agree(self):
        db = chain_db(6)
        linear = RoundSynchronousEvaluator(linear_closure_rules("E", "T", order), order)
        squared = RoundSynchronousEvaluator(squared_closure_rules("E", "T", order), order)
        world_linear, _, _ = linear.evaluate(db)
        world_squared, _, _ = squared.evaluate(db)
        for a in range(7):
            for b in range(7):
                point = [Fraction(a), Fraction(b)]
                assert world_linear.relation("T").contains_values(
                    point
                ) == world_squared.relation("T").contains_values(point)

    def test_fringe_tracked(self):
        rules = linear_closure_rules("E", "T", order)
        evaluator = RoundSynchronousEvaluator(rules, order)
        _, info, _ = evaluator.evaluate(chain_db(5))
        # the longest path 0->5 has fringe 5 (five edge leaves) and depth 5
        depths = [meta.depth for meta in info["T"].values()]
        fringes = [meta.fringe for meta in info["T"].values()]
        assert max(depths) == 5
        assert max(fringes) == 5

    def test_polynomial_fringe_of_squared_program(self):
        rules = squared_closure_rules("E", "T", order)
        evaluator = RoundSynchronousEvaluator(rules, order)
        _, info, _ = evaluator.evaluate(chain_db(8))
        # fringe stays polynomial (equal to path length), depth logarithmic
        assert max(meta.fringe for meta in info["T"].values()) <= 8
        assert max(meta.depth for meta in info["T"].values()) <= 4
