"""Parallel round execution: determinism, budgets, and chaos under workers."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.datalog import DatalogProgram, EngineOptions, EvaluationStats
from repro.core.generalized import GeneralizedDatabase
from repro.errors import BudgetExceededError
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget
from repro.workloads.orders import chain_edges

theory = DenseOrderTheory()

#: two recursive rules plus a three-way join: enough tasks per round for
#: the executor to genuinely fan out
RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
S(x, w) :- E(x, y), T(y, z), E(z, w).
"""


def _evaluate(n=10, semi_naive=True, **options):
    program = DatalogProgram(
        parse_rules(RULES, theory=theory),
        theory,
        options=EngineOptions(**options),
    )
    return program.evaluate(chain_edges(n), semi_naive=semi_naive)


def _fingerprint(world):
    return {
        name: frozenset(t.atoms for t in world.relation(name))
        for name in ("T", "S")
    }


class TestDeterministicMerge:
    def test_parallel_matches_serial_fixpoint(self):
        for semi_naive in (True, False):
            world_p, stats_p = _evaluate(parallel_workers=3, semi_naive=semi_naive)
            world_s, _ = _evaluate(parallel=False, semi_naive=semi_naive)
            assert _fingerprint(world_p) == _fingerprint(world_s)
            assert stats_p.parallel_rounds > 0
            assert stats_p.parallel_tasks >= 2 * stats_p.parallel_rounds

    def test_parallel_insertion_order_matches_serial(self):
        # the chunk-ordered merge keeps even the *insertion order* of the
        # derived relations identical to the serial engine
        world_p, _ = _evaluate(parallel_workers=4)
        world_s, _ = _evaluate(parallel=False)
        for name in ("T", "S"):
            assert world_p.relation(name).tuples() == world_s.relation(name).tuples()

    def test_repeated_runs_identical(self):
        worlds = [_evaluate(parallel_workers=3)[0] for _ in range(3)]
        prints = {frozenset(_fingerprint(w)["S"]) for w in worlds}
        assert len(prints) == 1

    def test_single_cpu_fallback_is_serial(self):
        _world, stats = _evaluate(parallel_workers=1)
        assert stats.parallel_rounds == 0

    def test_worker_stats_are_merged(self):
        _world, stats_p = _evaluate(parallel_workers=3)
        _world, stats_s = _evaluate(parallel=False)
        # counter totals are task-local, so the aggregate matches serial
        assert stats_p.join_steps == stats_s.join_steps
        assert stats_p.rule_firings == stats_s.rule_firings
        assert stats_p.tuples_derived == stats_s.tuples_derived


class TestStatsMerge:
    def test_merge_is_additive(self):
        a = EvaluationStats(join_steps=3, rule_firings=1, index_probes=2)
        b = EvaluationStats(join_steps=4, rule_firings=5, pin_prunes=7)
        a.merge(b)
        assert a.join_steps == 7
        assert a.rule_firings == 6
        assert a.index_probes == 2
        assert a.pin_prunes == 7

    def test_merge_leaves_driver_fields_alone(self):
        a = EvaluationStats(iterations=2, per_round_new=[1])
        a.merge(EvaluationStats(iterations=9, per_round_new=[5, 5]))
        assert a.iterations == 2
        assert a.per_round_new == [1]


class TestBudgetsUnderParallelism:
    def test_budget_raise_propagates_from_workers(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            _evaluate(parallel_workers=3, budget=Budget(joins=40))
        assert excinfo.value.report.budget_kind == "joins"

    def test_fringe_mode_returns_sound_stage(self):
        budget = Budget(joins=40, partial_results="fringe")
        world, stats = _evaluate(parallel_workers=3, budget=budget)
        assert stats.incomplete
        assert stats.budget["budget_kind"] == "joins"
        # fringe soundness: everything derived is in the true fixpoint
        full, _ = _evaluate(parallel=False)
        for name in ("T", "S"):
            assert _fingerprint(world)[name] <= _fingerprint(full)[name]

    def test_worker_ticks_reach_shared_meter(self):
        budget = Budget(partial_results="fringe")
        meter = budget.start()
        from repro.runtime.budget import metered

        program = DatalogProgram(
            parse_rules(RULES, theory=theory),
            theory,
            options=EngineOptions(parallel_workers=3),
        )
        with metered(meter):
            _world, stats = program.evaluate(chain_edges(6))
        assert stats.parallel_rounds > 0
        assert meter.counts["join"] == stats.join_steps


@pytest.mark.chaos
class TestChaosUnderParallelism:
    def test_chaos_faults_keep_fixpoint_identical(self):
        from repro.runtime.chaos import ChaosPolicy, chaos_scope, harden

        hardened = harden(DenseOrderTheory())
        program = DatalogProgram(
            parse_rules(RULES, theory=hardened),
            hardened,
            options=EngineOptions(parallel_workers=3),
        )
        with chaos_scope(ChaosPolicy(p=0.05, seed=11)):
            world, stats = program.evaluate(chain_edges(8))
        reference, _ = _evaluate(n=8, parallel=False)
        assert _fingerprint(world) == _fingerprint(reference)
        assert stats.parallel_rounds > 0
