"""Unit tests for incremental view maintenance (MaterializedView).

The differential properties (maintained == from-scratch over random update
interleavings) live in ``test_ivm_equivalence.py``; this file locks down the
mechanism: counting supports, DRed over-deletion/re-derivation, negation
stratum recomputation, the recompute fallback, delta hygiene (EDB-only,
no-op batches free, retract+reinsert cancellation), and the budget/staleness
contract.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.core import DatalogProgram, GeneralizedDatabase, MaterializedView
from repro.core.datalog import EngineOptions
from repro.core.generalized import GeneralizedTuple
from repro.errors import EvaluationError, StaleViewError
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget

TC_RULES = """
T(x, y) :- E(x, y).
T(x, z) :- E(x, y), T(y, z).
"""

JOIN_RULES = """
J(x, z) :- E(x, y), F(y, z).
"""

NEGATION_RULES = TC_RULES + """
Q(x, y) :- F(x, y), not T(x, y).
"""


def _theory():
    return DenseOrderTheory()


def _program(rules_text, theory, **options):
    opts = replace(EngineOptions.all_on(), **options) if options else None
    return DatalogProgram(
        parse_rules(rules_text, theory=theory),
        theory,
        options=opts or EngineOptions.all_on(),
    )


def _db(theory, **relations):
    db = GeneralizedDatabase(theory)
    for name, points in relations.items():
        relation = db.create_relation(name, ("x", "y"))
        for a, b in points:
            relation.add_point([Fraction(a), Fraction(b)])
    return db


def _point(a, b, variables=("x", "y")):
    theory = _theory()
    atoms = tuple(
        theory.equality(v, theory.constant(Fraction(c)))
        for v, c in zip(variables, (a, b))
    )
    return GeneralizedTuple(tuple(variables), atoms)


def _scratch(rules_text, theory_factory, **relations):
    theory = theory_factory()
    world, _ = _program(rules_text, theory).evaluate(_db(theory, **relations))
    return {n: frozenset(world.relation(n).keys()) for n in world.names()}


class TestModes:
    def test_positive_recursive_is_incremental(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        )
        assert view.mode == "incremental"
        view.close()

    def test_stratified_negation_is_incremental(self):
        theory = _theory()
        view = MaterializedView(
            _program(NEGATION_RULES, theory),
            _db(theory, E=[(0, 1)], F=[(1, 2)]),
        )
        assert view.mode == "incremental"
        view.close()

    def test_inflationary_with_negation_falls_back(self):
        theory = _theory()
        view = MaterializedView(
            _program(NEGATION_RULES, theory),
            _db(theory, E=[(0, 1)], F=[(1, 2)]),
            semantics="inflationary",
        )
        assert view.mode == "recompute"
        view.close()

    def test_predefined_nonempty_idb_is_rejected(self):
        theory = _theory()
        db = _db(theory, E=[(0, 1)], T=[(5, 6)])
        with pytest.raises(EvaluationError, match="derived by rules"):
            MaterializedView(_program(TC_RULES, theory), db)

    def test_delta_on_idb_is_rejected(self):
        theory = _theory()
        with MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        ) as view:
            with pytest.raises(EvaluationError, match="EDB"):
                view.insert("T", _point(7, 8))


class TestCounting:
    def test_support_survives_losing_one_of_two_derivations(self):
        # J(0, 2) via y=1 and via y=9: retracting one E edge must keep it
        theory = _theory()
        view = MaterializedView(
            _program(JOIN_RULES, theory),
            _db(theory, E=[(0, 1), (0, 9)], F=[(1, 2), (9, 2)]),
        )
        assert view.support_count("J", _point(0, 2)) == 2
        view.retract("E", _point(0, 1))
        assert view.support_count("J", _point(0, 2)) == 1
        assert view.fingerprint() == _scratch(
            JOIN_RULES, _theory, E=[(0, 9)], F=[(1, 2), (9, 2)]
        )
        view.retract("E", _point(0, 9))
        assert view.support_count("J", _point(0, 2)) == 0
        assert len(view.relation("J")) == 0
        assert view.total_stats.ivm_count_clamps == 0
        view.close()

    def test_insert_increments_support(self):
        theory = _theory()
        view = MaterializedView(
            _program(JOIN_RULES, theory),
            _db(theory, E=[(0, 1)], F=[(1, 2)]),
        )
        view.insert("E", _point(0, 9))
        view.insert("F", _point(9, 2))
        assert view.support_count("J", _point(0, 2)) == 2
        view.close()


class TestDRed:
    def test_retract_with_alternative_path_rederives(self):
        # two disjoint paths 0->1->2 and 0->3->2: cutting one leaves T(0,2)
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory),
            _db(theory, E=[(0, 1), (1, 2), (0, 3), (3, 2)]),
        )
        stats = view.retract("E", _point(0, 1))
        assert stats.ivm_overdeleted > 0
        assert stats.ivm_rederived > 0  # T(0, 2) survives via 0->3->2
        assert view.fingerprint() == _scratch(
            TC_RULES, _theory, E=[(1, 2), (0, 3), (3, 2)]
        )
        assert 0.0 < stats.ivm_rederivation_ratio <= 1.0
        view.close()

    def test_retract_cuts_downstream_closure(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory),
            _db(theory, E=[(i, i + 1) for i in range(5)]),
        )
        stats = view.retract("E", _point(2, 3))
        assert stats.ivm_derived_removed > 0
        assert view.fingerprint() == _scratch(
            TC_RULES, _theory, E=[(0, 1), (1, 2), (3, 4), (4, 5)]
        )
        view.close()

    def test_cycle_retract(self):
        theory = _theory()
        cycle = [(0, 1), (1, 2), (2, 0)]
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=cycle)
        )
        view.retract("E", _point(2, 0))
        assert view.fingerprint() == _scratch(
            TC_RULES, _theory, E=[(0, 1), (1, 2)]
        )
        view.close()


class TestNegationStratum:
    def test_insert_flips_negated_tuple(self):
        theory = _theory()
        view = MaterializedView(
            _program(NEGATION_RULES, theory),
            _db(theory, E=[(0, 1)], F=[(0, 2)]),
        )
        # Q(0, 2) holds (no path 0->2); adding E(1, 2) kills it
        assert len(view.relation("Q")) == 1
        stats = view.insert("E", _point(1, 2))
        assert stats.ivm_recomputed_strata >= 1
        assert view.fingerprint() == _scratch(
            NEGATION_RULES, _theory, E=[(0, 1), (1, 2)], F=[(0, 2)]
        )
        assert len(view.relation("Q")) == 0
        view.close()

    def test_retract_restores_negated_tuple(self):
        theory = _theory()
        view = MaterializedView(
            _program(NEGATION_RULES, theory),
            _db(theory, E=[(0, 1), (1, 2)], F=[(0, 2)]),
        )
        assert len(view.relation("Q")) == 0
        view.retract("E", _point(1, 2))
        assert len(view.relation("Q")) == 1
        assert view.fingerprint() == _scratch(
            NEGATION_RULES, _theory, E=[(0, 1)], F=[(0, 2)]
        )
        view.close()


class TestBatchSemantics:
    def test_noop_batch_is_free(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        )
        stats = view.apply(
            inserts=[("E", _point(0, 1))],  # already present
            retracts=[("E", _point(5, 5))],  # absent
        )
        assert stats.ivm_inserts == 0
        assert stats.ivm_retracts == 0
        assert stats.join_steps == 0
        assert stats.tuples_added == 0
        view.close()

    def test_retract_then_reinsert_in_one_batch_cancels(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1), (1, 2)])
        )
        stats = view.apply(
            inserts=[("E", _point(0, 1))], retracts=[("E", _point(0, 1))]
        )
        assert stats.ivm_inserts == 0 and stats.ivm_retracts == 0
        assert stats.join_steps == 0
        assert view.fingerprint() == _scratch(
            TC_RULES, _theory, E=[(0, 1), (1, 2)]
        )
        view.close()

    def test_batch_mixing_relations(self):
        theory = _theory()
        view = MaterializedView(
            _program(NEGATION_RULES, theory),
            _db(theory, E=[(0, 1)], F=[(0, 2)]),
        )
        view.apply(
            inserts=[("E", _point(1, 2)), ("F", _point(1, 2))],
            retracts=[("F", _point(0, 2))],
        )
        assert view.fingerprint() == _scratch(
            NEGATION_RULES, _theory, E=[(0, 1), (1, 2)], F=[(1, 2)]
        )
        view.close()

    def test_unsatisfiable_delta_is_a_noop(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        )
        contradictory = GeneralizedTuple(
            ("x", "y"),
            (
                theory.lt("x", theory.constant(Fraction(0))),
                theory.lt(theory.constant(Fraction(1)), "x"),
            ),
        )
        stats = view.apply(inserts=[("E", contradictory)])
        assert stats.ivm_inserts == 0 and stats.join_steps == 0
        view.close()


class TestStaleness:
    def _tight_view(self):
        theory = _theory()
        options = replace(
            EngineOptions.all_on(),
            budget=Budget(tuples=4, partial_results="fringe"),
        )
        program = DatalogProgram(
            parse_rules(TC_RULES, theory=theory), theory, options=options
        )
        db = _db(theory, E=[(0, 1), (1, 2)])
        return MaterializedView(program, db)

    def test_budget_trip_tags_stale_and_degrades(self):
        view = self._tight_view()
        assert not view.stale
        # closing the cycle derives the full 3x3 closure: way past budget
        stats = view.insert("E", _point(2, 0))
        assert stats.incomplete and stats.budget is not None
        assert view.stale and "budget" in (view.stale_reason or "")
        view.close()

    def test_stale_view_refuses_deltas_but_answers_reads(self):
        view = self._tight_view()
        view.insert("E", _point(2, 0))
        assert view.stale
        assert view.relation("T") is not None  # reads still answered
        with pytest.raises(StaleViewError):
            view.insert("E", _point(7, 8))
        view.close()

    def test_refresh_recovers_with_a_workable_budget(self):
        theory = _theory()
        options = replace(
            EngineOptions.all_on(),
            budget=Budget(tuples=4, partial_results="fringe"),
        )
        program = DatalogProgram(
            parse_rules(TC_RULES, theory=theory), theory, options=options
        )
        view = MaterializedView(program, _db(theory, E=[(0, 1), (1, 2)]))
        view.insert("E", _point(2, 0))  # closing the cycle trips the budget
        assert view.stale
        view.refresh()  # full 12-tuple rematerialization still exceeds 4
        assert view.stale
        # shrink the EDB below the budget and refresh again
        view.world.relation("E").discard(_point(2, 0))
        view.world.relation("E").discard(_point(1, 2))
        stats = view.refresh()
        assert not view.stale and not stats.incomplete
        assert view.fingerprint() == _scratch(TC_RULES, _theory, E=[(0, 1)])
        view.insert("E", _point(1, 2))  # deltas accepted again
        assert view.fingerprint() == _scratch(
            TC_RULES, _theory, E=[(0, 1), (1, 2)]
        )
        view.close()


class TestStats:
    def test_counters_accumulate_and_serialize(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1), (1, 2)])
        )
        view.insert("E", _point(2, 3))
        view.retract("E", _point(0, 1))
        total = view.total_stats
        assert total.ivm_steps == 2
        assert total.ivm_inserts == 1 and total.ivm_retracts == 1
        assert total.ivm_maintain_seconds > 0
        encoded = total.as_dict()
        for key in (
            "ivm_steps",
            "ivm_inserts",
            "ivm_retracts",
            "ivm_derived_added",
            "ivm_derived_removed",
            "ivm_overdeleted",
            "ivm_rederived",
            "ivm_rederivation_ratio",
            "ivm_count_clamps",
            "ivm_recomputed_strata",
            "ivm_maintain_seconds",
        ):
            assert key in encoded
        view.close()

    def test_last_stats_is_per_apply(self):
        theory = _theory()
        view = MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        )
        view.insert("E", _point(1, 2))
        assert view.last_stats.ivm_steps == 1
        assert view.last_stats.ivm_inserts == 1
        view.close()


class TestContextManager:
    def test_context_manager_closes(self):
        theory = _theory()
        with MaterializedView(
            _program(TC_RULES, theory), _db(theory, E=[(0, 1)])
        ) as view:
            view.insert("E", _point(1, 2))
        # caches are torn down; reads still work on the final world
        assert len(view.relation("T")) == 3
