"""Tests for the workload generators and the measurement harness."""

import math


from repro.constraints.dense_order import DenseOrderTheory
from repro.harness.measure import fit_exponent, format_table, sweep, time_callable
from repro.workloads.equalities import random_equality_database
from repro.workloads.orders import chain_edges, interval_relation, random_order_tuples
from repro.workloads.spatial import (
    random_points,
    random_rectangles,
    rectangles_to_generalized,
    rectangles_to_poly_generalized,
)

order = DenseOrderTheory()


class TestSpatialGenerators:
    def test_deterministic(self):
        assert random_rectangles(10, seed=7) == random_rectangles(10, seed=7)
        assert random_rectangles(10, seed=7) != random_rectangles(10, seed=8)

    def test_generalized_encoding(self):
        rects = random_rectangles(5, seed=1)
        db = rectangles_to_generalized(rects)
        relation = db.relation("Rect")
        assert len(relation) == 5
        rect = rects[0]
        inside = {
            "n": rect.name,
            "x": (rect.x1 + rect.x2) / 2,
            "y": (rect.y1 + rect.y2) / 2,
        }
        from fractions import Fraction

        inside["n"] = Fraction(inside["n"])
        assert relation.contains_point(inside)

    def test_poly_encoding(self):
        rects = random_rectangles(3, seed=2)
        db = rectangles_to_poly_generalized(rects)
        assert len(db.relation("Rect")) == 3

    def test_points_distinct(self):
        points = random_points(50, seed=3)
        assert len(set(points)) == 50


class TestOrderGenerators:
    def test_interval_relation(self):
        relation = interval_relation(20, seed=0)
        assert len(relation) <= 20  # duplicates may collapse
        assert relation.arity == 1

    def test_chain(self):
        db = chain_edges(5)
        from fractions import Fraction

        assert db.relation("E").contains_values([Fraction(0), Fraction(1)])
        assert not db.relation("E").contains_values([Fraction(0), Fraction(2)])

    def test_random_tuples_satisfiable(self):
        for conj in random_order_tuples(3, 20, seed=5):
            assert order.is_satisfiable(conj)

    def test_equality_db(self):
        db = random_equality_database(30, seed=2)
        assert len(db.relation("R")) > 0


class TestHarness:
    def test_time_callable_positive(self):
        elapsed = time_callable(lambda: sum(range(1000)))
        assert elapsed >= 0

    def test_fit_exponent_linear(self):
        sizes = [100, 200, 400, 800]
        times = [0.01 * n for n in sizes]
        assert abs(fit_exponent(sizes, times) - 1.0) < 1e-9

    def test_fit_exponent_quadratic(self):
        sizes = [10, 20, 40, 80]
        times = [1e-6 * n * n for n in sizes]
        assert abs(fit_exponent(sizes, times) - 2.0) < 1e-9

    def test_fit_exponent_degenerate(self):
        assert math.isnan(fit_exponent([10], [0.1]))

    def test_sweep(self):
        result = sweep(
            "demo",
            [10, 20],
            build=lambda n: list(range(n)),
            run=lambda xs: sum(xs),
        )
        assert result.sizes == [10, 20]
        assert all(t >= 0 for t in result.times)

    def test_format_table(self):
        table = format_table(["a", "b"], [["1", "22"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
