"""Tests for the classical finite relational baseline."""

from fractions import Fraction

import pytest

from repro.errors import ArityError
from repro.geometry.rectangles import Rect, intersecting_pairs_bruteforce
from repro.relational.algebra import difference, join, project, rename, select, union
from repro.relational.rectangles import (
    classical_rectangle_relation,
    intersecting_pairs_classical,
)
from repro.relational.relation import FiniteRelation
from repro.workloads.spatial import random_rectangles


class TestFiniteRelation:
    def test_set_semantics(self):
        r = FiniteRelation("R", ("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r

    def test_arity_checked(self):
        r = FiniteRelation("R", ("a",))
        with pytest.raises(ArityError):
            r.add((1, 2))

    def test_duplicate_attributes(self):
        with pytest.raises(ArityError):
            FiniteRelation("R", ("a", "a"))


class TestAlgebra:
    def setup_method(self):
        self.r = FiniteRelation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30)])
        self.s = FiniteRelation("S", ("b", "c"), [(10, "x"), (30, "y")])

    def test_select(self):
        result = select(self.r, lambda row: row["a"] >= 2)
        assert set(result) == {(2, 20), (3, 30)}

    def test_project(self):
        result = project(self.r, ["b"])
        assert set(result) == {(10,), (20,), (30,)}

    def test_project_reorder(self):
        result = project(self.r, ["b", "a"])
        assert (10, 1) in result

    def test_rename(self):
        renamed = rename(self.r, {"a": "x"})
        assert renamed.attributes == ("x", "b")

    def test_union_difference(self):
        extra = FiniteRelation("R2", ("a", "b"), [(1, 10), (9, 90)])
        merged = union(self.r, extra)
        assert len(merged) == 4
        removed = difference(merged, extra)
        assert set(removed) == {(2, 20), (3, 30)}

    def test_union_schema_mismatch(self):
        with pytest.raises(ArityError):
            union(self.r, self.s)

    def test_natural_join(self):
        result = join(self.r, self.s)
        assert result.attributes == ("a", "b", "c")
        assert set(result) == {(1, 10, "x"), (3, 30, "y")}

    def test_cartesian_when_disjoint(self):
        t = FiniteRelation("T", ("d",), [(7,), (8,)])
        result = join(self.r, t)
        assert len(result) == 6


class TestClassicalRectangles:
    def test_matches_geometry(self):
        rects = random_rectangles(40, seed=3, universe=100, max_side=30)
        relation = classical_rectangle_relation(rects)
        classical = intersecting_pairs_classical(relation)
        geometric = intersecting_pairs_bruteforce(rects)
        assert classical == geometric

    def test_five_ary_schema(self):
        relation = classical_rectangle_relation(
            [Rect(1, Fraction(0), Fraction(0), Fraction(1), Fraction(1))]
        )
        assert relation.attributes == ("n", "a", "b", "c", "d")


class TestRenameBudget:
    """rename is metadata-only: no tuple ticks, no forced row re-admission."""

    def test_rename_charges_no_tuple_budget(self):
        from repro.relational.relation import FiniteRelation
        from repro.runtime.budget import Budget, supervised

        relation = FiniteRelation("R", ("a", "b"), [(i, i + 1) for i in range(10)])
        with supervised(Budget(tuples=3)) as meter:
            renamed = rename(relation, {"a": "x"})
        assert renamed.attributes == ("x", "b")
        assert len(renamed) == 10
        assert meter.counts["tuple"] == 0

    def test_rename_rows_independent_of_source(self):
        from repro.relational.relation import FiniteRelation

        relation = FiniteRelation("R", ("a",), [(1,), (2,)])
        renamed = rename(relation, {"a": "x"})
        relation.add((3,))
        assert len(renamed) == 2
        assert set(renamed) == {(1,), (2,)}
