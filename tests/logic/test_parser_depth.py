"""Recursion-depth guard of the formula parser (robustness satellite).

A pathological 10k-deep ``not`` chain must fail with a positioned
:class:`ParseError`, never a Python ``RecursionError``.
"""

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.errors import ParseError
from repro.logic.parser import parse_query

theory = DenseOrderTheory()


class TestDepthGuard:
    def test_10k_negation_chain_is_a_parse_error(self):
        text = "not " * 10_000 + "x < 1"
        with pytest.raises(ParseError) as info:
            parse_query(text, theory=theory)
        assert "nesting exceeds the maximum depth" in str(info.value)
        assert info.value.position is not None

    def test_10k_paren_nesting_is_a_parse_error(self):
        text = "(" * 10_000 + "x < 1" + ")" * 10_000
        with pytest.raises(ParseError) as info:
            parse_query(text, theory=theory)
        assert "nesting exceeds the maximum depth" in str(info.value)

    def test_deep_but_legal_nesting_still_parses(self):
        text = "not " * 60 + "x < 1"
        formula = parse_query(text, theory=theory)
        assert formula is not None

    def test_mixed_nesting_under_limit_parses(self):
        text = "(" * 20 + "not (x < 1 and y < 2)" + ")" * 20
        assert parse_query(text, theory=theory) is not None
