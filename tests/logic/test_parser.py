"""Tests for the textual query/rule parser."""

from fractions import Fraction

import pytest

from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.errors import ParseError
from repro.logic.parser import parse_query, parse_rules
from repro.logic.syntax import (
    And,
    Exists,
    ForAll,
    Not,
    Or,
    RelationAtom,
    free_variables,
)

order = DenseOrderTheory()
poly = RealPolynomialTheory()
equality = EqualityTheory()


class TestQueryParsing:
    def test_relation_atom(self):
        q = parse_query("R(x, y)", theory=order)
        assert q == RelationAtom("R", ("x", "y"))

    def test_connectives(self):
        q = parse_query("R(x) and S(x) or T(x)", theory=order)
        assert isinstance(q, Or)  # 'and' binds tighter than 'or'
        assert isinstance(q.children[0], And)

    def test_quantifiers(self):
        q = parse_query("exists x, y . R(x, y)", theory=order)
        assert isinstance(q, Exists)
        assert q.variables_bound == ("x", "y")
        q2 = parse_query("forall x . R(x, x2)", theory=order)
        assert isinstance(q2, ForAll)

    def test_negation(self):
        q = parse_query("not R(x)", theory=order)
        assert isinstance(q, Not)

    def test_order_comparisons(self):
        q = parse_query("x < y and x <= 3 and y != 4 and y >= x", theory=order)
        assert free_variables(q) == {"x", "y"}

    def test_constant_in_relation_compiled(self):
        q = parse_query("R(x, 3)", theory=order)
        assert isinstance(q, Exists)
        assert free_variables(q) == {"x"}

    def test_repeated_variable_compiled(self):
        q = parse_query("R(x, x)", theory=order)
        assert isinstance(q, Exists)
        assert free_variables(q) == {"x"}

    def test_fractions_and_decimals(self):
        q = parse_query("x < 1/2 and y <= 2.5", theory=order)
        atoms = list(q.children)
        assert atoms[0] == lt("x", Fraction(1, 2))
        assert atoms[1] == le("y", Fraction(5, 2))

    def test_parenthesized_formula(self):
        q = parse_query("(R(x) or S(x)) and x < 1", theory=order)
        assert isinstance(q, And)

    def test_arithmetic_rejected_for_dense_order(self):
        with pytest.raises(ParseError):
            parse_query("x + y < 1", theory=order)

    def test_order_rejected_for_equality_theory(self):
        with pytest.raises(ParseError):
            parse_query("x < y", theory=equality)

    def test_equality_theory_comparisons(self):
        q = parse_query("x = y and y != 3", theory=equality)
        assert free_variables(q) == {"x", "y"}

    def test_polynomial_arithmetic(self):
        q = parse_query("x*x + y*y <= 1 and x - y = 0", theory=poly)
        assert free_variables(q) == {"x", "y"}
        # the checkbook linear equation of Example 2.4 parses too
        q2 = parse_query("f + r + m + s = w + i", theory=poly)
        assert len(free_variables(q2)) == 6

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("R(x) R(y)", theory=order)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_query("R(x) @ S(y)", theory=order)


class TestRuleParsing:
    def test_simple_program(self):
        rules = parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            """,
            theory=order,
        )
        assert len(rules) == 2
        assert rules[0].head == RelationAtom("T", ("x", "y"))
        assert rules[1].positive_atoms[0].name == "T"

    def test_constraints_in_body(self):
        rules = parse_rules("S(x) :- R(x, y), x < y, y <= 5.", theory=order)
        assert len(rules[0].constraint_atoms) == 2

    def test_negated_literal(self):
        rules = parse_rules("S(x) :- R(x), not T(x).", theory=order)
        assert rules[0].has_negation()

    def test_constant_argument_in_body(self):
        rules = parse_rules("S(x) :- R(x, 3).", theory=order)
        rule = rules[0]
        # the constant became a fresh variable plus an equality constraint
        assert len(rule.positive_atoms[0].args) == 2
        assert rule.constraint_atoms

    def test_constant_in_head_rejected(self):
        with pytest.raises(ParseError):
            parse_rules("S(3) :- R(x).", theory=order)

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rules("S(x) :- R(x)", theory=order)
