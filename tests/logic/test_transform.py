"""Tests for NNF/DNF transforms."""

import pytest

from repro.constraints.dense_order import DenseOrderTheory, eq, le, lt, ne
from repro.logic.syntax import And, Exists, ForAll, Not, Or, RelationAtom
from repro.logic.transform import dnf_to_formula, to_dnf, to_nnf

order = DenseOrderTheory()


class TestNnf:
    def test_atom_negation_via_theory(self):
        formula = Not(le("x", "y"))
        assert to_nnf(formula, order.negate_atom) == lt("y", "x")

    def test_double_negation(self):
        formula = Not(Not(lt("x", "y")))
        assert to_nnf(formula, order.negate_atom) == lt("x", "y")

    def test_de_morgan(self):
        formula = Not(And((eq("x", 1), eq("y", 2))))
        result = to_nnf(formula, order.negate_atom)
        assert isinstance(result, Or)
        assert set(result.children) == {ne("x", 1), ne("y", 2)}

    def test_quantifier_duality(self):
        formula = Not(Exists(("x",), eq("x", 1)))
        result = to_nnf(formula, order.negate_atom)
        assert isinstance(result, ForAll)
        assert result.child == ne("x", 1)

    def test_forall_negation(self):
        formula = Not(ForAll(("x",), eq("x", 1)))
        result = to_nnf(formula, order.negate_atom)
        assert isinstance(result, Exists)

    def test_negated_relation_atom_kept(self):
        formula = Not(RelationAtom("R", ("x",)))
        result = to_nnf(formula, order.negate_atom)
        assert result == Not(RelationAtom("R", ("x",)))


class TestDnf:
    def test_distribution(self):
        formula = And((Or((eq("x", 1), eq("x", 2))), eq("y", 3)))
        dnf = to_dnf(formula)
        assert len(dnf) == 2
        assert all(len(conj) == 2 for conj in dnf)

    def test_empty_or_is_false(self):
        assert to_dnf(Or(())) == []

    def test_empty_and_is_true(self):
        assert to_dnf(And(())) == [[]]

    def test_quantifier_rejected(self):
        with pytest.raises(ValueError):
            to_dnf(Exists(("x",), eq("x", 1)))

    def test_unexpected_negation_rejected(self):
        with pytest.raises(ValueError):
            to_dnf(Not(eq("x", 1)))

    def test_roundtrip(self):
        formula = Or((And((eq("x", 1), eq("y", 2))), eq("z", 3)))
        dnf = to_dnf(formula)
        rebuilt = dnf_to_formula(dnf)
        assert to_dnf(rebuilt) == dnf
