"""Tests for the formula AST: free variables, renaming, connective helpers."""

import pytest

from repro.constraints.dense_order import lt

from repro.logic.syntax import (
    And,
    Exists,
    FALSE,
    ForAll,
    Not,
    Or,
    RelationAtom,
    TRUE,
    all_relation_atoms,
    all_variables,
    conjoin,
    disjoin,
    free_variables,
    fresh_variable,
    rename_variables,
)


class TestRelationAtom:
    def test_variables(self):
        atom = RelationAtom("R", ("x", "y"))
        assert atom.variables() == {"x", "y"}

    def test_repeated_variable_rejected(self):
        with pytest.raises(ValueError):
            RelationAtom("R", ("x", "x"))

    def test_rename(self):
        atom = RelationAtom("R", ("x", "y"))
        assert atom.rename({"x": "a"}) == RelationAtom("R", ("a", "y"))

    def test_str(self):
        assert str(RelationAtom("R", ("x",))) == "R(x)"


class TestFreeVariables:
    def test_atom(self):
        assert free_variables(lt("x", "y")) == {"x", "y"}

    def test_quantifier_binds(self):
        formula = Exists(("x",), And((RelationAtom("R", ("x", "y")),)))
        assert free_variables(formula) == {"y"}

    def test_forall_binds(self):
        formula = ForAll(("x", "y"), lt("x", "y"))
        assert free_variables(formula) == frozenset()

    def test_negation_transparent(self):
        assert free_variables(Not(lt("a", "b"))) == {"a", "b"}

    def test_constants_do_not_count(self):
        assert free_variables(lt("x", 3)) == {"x"}

    def test_all_variables_includes_bound(self):
        formula = Exists(("x",), lt("x", "y"))
        assert all_variables(formula) == {"x", "y"}


class TestConnectives:
    def test_true_false_constants(self):
        assert TRUE == And(())
        assert FALSE == Or(())

    def test_conjoin_flattens(self):
        inner = And((lt("a", "b"), lt("b", "c")))
        result = conjoin([inner, lt("c", "d")])
        assert isinstance(result, And)
        assert len(result.children) == 3

    def test_disjoin_flattens(self):
        inner = Or((lt("a", "b"),))
        result = disjoin([inner, lt("c", "d")])
        assert isinstance(result, Or)
        assert len(result.children) == 2

    def test_operator_sugar(self):
        combined = lt("a", "b") & lt("b", "c")
        assert isinstance(combined, And)
        either = lt("a", "b") | lt("b", "c")
        assert isinstance(either, Or)
        negated = ~lt("a", "b")
        assert isinstance(negated, Not)

    def test_conjoin_single(self):
        atom = lt("a", "b")
        assert conjoin([atom]) is atom


class TestRenameVariables:
    def test_simple(self):
        formula = And((lt("x", "y"), RelationAtom("R", ("x",))))
        renamed = rename_variables(formula, {"x": "z"})
        assert free_variables(renamed) == {"z", "y"}

    def test_bound_variables_untouched(self):
        formula = Exists(("x",), lt("x", "y"))
        renamed = rename_variables(formula, {"x": "z", "y": "w"})
        assert isinstance(renamed, Exists)
        assert renamed.variables_bound == ("x",)
        assert free_variables(renamed) == {"w"}

    def test_capture_avoided(self):
        # renaming y -> x must not let x be captured by the quantifier
        formula = Exists(("x",), lt("x", "y"))
        renamed = rename_variables(formula, {"y": "x"})
        assert isinstance(renamed, Exists)
        assert renamed.variables_bound != ("x",)
        assert free_variables(renamed) == {"x"}

    def test_relation_atom_collision_detected(self):
        # renaming both arguments of a relation atom to the same name is an
        # arity violation and must raise
        with pytest.raises(ValueError):
            rename_variables(RelationAtom("R", ("x", "y")), {"x": "y"})


class TestIterators:
    def test_all_relation_atoms(self):
        formula = Exists(
            ("x",),
            And(
                (
                    RelationAtom("R", ("x", "y")),
                    Or((RelationAtom("S", ("y",)), lt("y", 3))),
                    Not(RelationAtom("R", ("y", "x"))),
                )
            ),
        )
        names = [a.name for a in all_relation_atoms(formula)]
        assert sorted(names) == ["R", "R", "S"]

    def test_fresh_variable_avoids_used(self):
        used = {"_v0", "_v1", "x"}
        fresh = fresh_variable(used)
        assert fresh not in used
