"""Pass 3 (closure): the analyzer and the engine guard must agree.

The runtime guard in ``DatalogProgram.__init__`` delegates to
``repro.analysis.closure.not_closed_recursion``; these tests pin the parity
contract across all four theories and both recursion shapes:

    analyzer reports CQL010  <=>  engine raises NotClosedError
"""

import pytest

from repro.analysis import NOT_CLOSED_MESSAGE, analyze_program, not_closed_recursion
from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.constraints.boolean import BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.core.datalog import DatalogProgram, Rule
from repro.errors import NotClosedError
from repro.logic.syntax import RelationAtom

THEORIES = {
    "dense_order": DenseOrderTheory,
    "equality": EqualityTheory,
    "real_poly": RealPolynomialTheory,
    "boolean": lambda: BooleanTheory(FreeBooleanAlgebra.with_generators(2)),
}


def _tc_rules():
    """Transitive closure: the canonical recursive program (Example 1.12
    shape), built without constraint atoms so every theory accepts it."""
    return [
        Rule(RelationAtom("T", ("x", "y")), (RelationAtom("E", ("x", "y")),)),
        Rule(
            RelationAtom("T", ("x", "y")),
            (RelationAtom("T", ("x", "z")), RelationAtom("E", ("z", "y"))),
        ),
    ]


def _flat_rules():
    return [
        Rule(RelationAtom("S", ("x", "y")), (RelationAtom("E", ("x", "y")),)),
    ]


def _engine_raises(rules, theory) -> bool:
    try:
        DatalogProgram(rules, theory)
    except NotClosedError:
        return True
    return False


@pytest.mark.parametrize("name", sorted(THEORIES))
@pytest.mark.parametrize(
    "make_rules", [_tc_rules, _flat_rules], ids=["recursive", "nonrecursive"]
)
def test_analyzer_and_engine_agree(name, make_rules):
    theory = THEORIES[name]()
    rules = make_rules()
    verdict = not_closed_recursion(rules, theory)
    assert verdict == _engine_raises(rules, theory)
    report = analyze_program(rules, theory)
    assert bool(report.by_code("CQL010")) == verdict
    # only real_poly + recursion is refused
    assert verdict == (name == "real_poly" and make_rules is _tc_rules)


def test_engine_error_message_is_the_shared_constant():
    with pytest.raises(NotClosedError) as excinfo:
        DatalogProgram(_tc_rules(), RealPolynomialTheory())
    assert str(excinfo.value) == NOT_CLOSED_MESSAGE


def test_escape_hatch_still_works():
    program = DatalogProgram(
        _tc_rules(), RealPolynomialTheory(), allow_unsafe_recursion=True
    )
    assert program.is_recursive()


def test_cql010_carries_the_runtime_message():
    report = analyze_program(_tc_rules(), RealPolynomialTheory())
    (diagnostic,) = report.by_code("CQL010")
    assert NOT_CLOSED_MESSAGE in diagnostic.message
    assert not report.ok


def test_mutual_recursion_is_also_refused():
    rules = [
        Rule(RelationAtom("P", ("x",)), (RelationAtom("Q", ("x",)),)),
        Rule(RelationAtom("Q", ("x",)), (RelationAtom("P", ("x",)),)),
    ]
    theory = RealPolynomialTheory()
    assert not_closed_recursion(rules, theory)
    assert _engine_raises(rules, theory)
