"""The semantic optimizer: containment rewrites never change fixpoints.

The property half runs conformance-generated datalog cases through the
``datalog[all_on]`` and ``datalog[semantic_off]`` strategies and demands
semantically equal answers; the directed half pins each pass (subsumption,
literal elimination, constraint tightening, unsat pruning, view
answerability), the Theorem 2.8 refusal (containment that holds semantically
but has no homomorphism witness must NOT be rewritten), the real_poly
no-op, and graceful degradation under budgets and injected faults.
"""

from dataclasses import replace

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.analysis.semantic import (
    CONTAINMENT_THEORIES,
    SemanticResult,
    optimize_program,
    rule_contained_in,
)
from repro.conformance.generators import THEORY_NAMES, generate_case
from repro.conformance.oracles import compare_relations
from repro.conformance.spec import build_case
from repro.conformance.strategies import strategies_for
from repro.constraints.dense_order import DenseOrderTheory, gt, lt
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq
from repro.core.datalog import DatalogProgram, EngineOptions, Rule
from repro.core.ivm import MaterializedView, ViewRegistry
from repro.logic.parser import parse_rules
from repro.logic.syntax import RelationAtom
from repro.runtime.budget import Budget, supervised

TC = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

SEMANTIC_OFF = replace(EngineOptions.all_on(), optimize_semantic=False)


def _chain_db(theory, n=5):
    from repro.core.generalized import GeneralizedDatabase

    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        edge.add_point([i, i + 1])
    return db


def _fingerprint(world, target):
    return frozenset(t.atoms for t in world.relation(target).tuples())


def _both_fixpoints(rules_text, theory_factory, semantics="auto", n=5):
    """(optimized world+stats, unoptimized world) over the same chain EDB."""
    theory = theory_factory()
    rules = parse_rules(rules_text, theory=theory)
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    world, stats = program.evaluate(_chain_db(theory, n), semantics=semantics)
    plain_theory = theory_factory()
    plain_rules = parse_rules(rules_text, theory=plain_theory)
    plain = DatalogProgram(plain_rules, plain_theory, options=SEMANTIC_OFF)
    plain_world, _stats = plain.evaluate(
        _chain_db(plain_theory, n), semantics=semantics
    )
    return world, stats, plain_world


# ------------------------------------------------------------------ property
@given(
    theory=st.sampled_from(sorted(THEORY_NAMES)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_optimized_fixpoint_equals_original(theory, seed):
    """The conformance pair: all_on (optimizer live) vs. semantic_off."""
    spec = generate_case(theory, seed)
    assume(spec.kind == "datalog")
    routes = {s.name: s for s in strategies_for(spec)}
    left = routes["datalog[all_on]"].run(spec)
    right = routes["datalog[semantic_off]"].run(spec)
    found = compare_relations(
        left, right, "semantic_on", "semantic_off", spec.theory, spec.m
    )
    assert found is None, found.describe()


@given(
    theory=st.sampled_from(sorted(CONTAINMENT_THEORIES)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_optimizer_is_idempotent(theory, seed):
    """Optimizing an already-optimized rule list changes nothing."""
    spec = generate_case(theory, seed)
    assume(spec.kind == "datalog")
    case = build_case(spec)
    first = optimize_program(case.rules, case.theory)
    second = optimize_program(first.rules, case.theory)
    assert not second.changed
    assert [str(r) for r in second.rules] == [str(r) for r in first.rules]


# ---------------------------------------------------------- directed: passes
@pytest.mark.parametrize("factory", [DenseOrderTheory, EqualityTheory])
def test_subsumption_removes_narrowed_duplicate(factory):
    theory = factory()
    narrowing = (
        "x < 3" if isinstance(theory, DenseOrderTheory) else "x = 1"
    )
    text = TC + f"T(x, y) :- E(x, y), {narrowing}.\n"
    world, stats, plain_world = _both_fixpoints(text, factory)
    assert stats.semantic_rules_subsumed == 1
    assert _fingerprint(world, "T") == _fingerprint(plain_world, "T")


def test_subsumption_keeps_the_shorter_equivalent_rule():
    theory = DenseOrderTheory()
    rules = parse_rules(
        "T(x, y) :- E(x, y), E(x, z).\nT(x, y) :- E(x, y).\n", theory=theory
    )
    result = optimize_program(rules, theory)
    # the two rules are equivalent; the longer one must be the one removed
    assert len(result.rules) == 1
    assert len(result.rules[0].body) == 1


def test_self_join_literal_eliminated():
    world, stats, plain_world = _both_fixpoints(
        "T(x, y) :- E(x, y), E(x, z).\n", DenseOrderTheory
    )
    assert stats.semantic_literals_eliminated == 1
    assert _fingerprint(world, "T") == _fingerprint(plain_world, "T")


def test_constraint_tightening_canonicalizes_redundant_bounds():
    theory = DenseOrderTheory()
    rules = parse_rules("T(x, y) :- E(x, y), x < 5, x < 3.\n", theory=theory)
    result = optimize_program(rules, theory)
    assert result.stats.constraints_tightened == 1
    (rule,) = result.rules
    constraints = [a for a in rule.body if not isinstance(a, RelationAtom)]
    assert len(constraints) == 1  # x < 3 subsumes x < 5


def test_unsat_rule_pruned_but_last_rule_kept():
    theory = DenseOrderTheory()
    rules = parse_rules(
        TC + "T(x, y) :- E(x, y), x < 1, x > 2.\n", theory=theory
    )
    result = optimize_program(rules, theory)
    assert result.stats.unsat_rules_removed == 1
    assert len(result.rules) == 2
    # a predicate whose only rule is unsatisfiable keeps that rule: the
    # relation must still exist (empty) in the fixpoint
    lone = parse_rules("T(x, y) :- E(x, y), x < 1, x > 2.\n", theory=theory)
    kept = optimize_program(lone, theory)
    assert kept.stats.unsat_rules_removed == 0
    assert len(kept.rules) == 1


def test_negation_containers_are_refused():
    theory = DenseOrderTheory()
    rules = parse_rules(
        "T(x, y) :- E(x, y), not F(x).\nT(x, y) :- E(x, y), not F(x), x < 3.\n",
        theory=theory,
    )
    # the container rule carries negation: containment is not checked and
    # both rules survive, even though the narrowed rule is redundant
    result = optimize_program(rules, theory)
    assert len(result.rules) == 2
    assert result.stats.rules_subsumed == 0


def test_stratified_and_inflationary_semantics_preserved():
    # the negated redundant rule is contained in the plain copy rule: its
    # negation only shrinks it further, so ignoring it stays sound and the
    # rule is removable under both negation semantics
    text = TC + (
        "S(x, y) :- E(x, y).\n"
        "S(x, y) :- E(x, y), not T(x, y), x < 3.\n"
    )
    for semantics in ("stratified", "inflationary"):
        world, stats, plain_world = _both_fixpoints(
            text, DenseOrderTheory, semantics=semantics
        )
        assert stats.semantic_rules_subsumed == 1
        for target in ("T", "S"):
            assert _fingerprint(world, target) == _fingerprint(
                plain_world, target
            )


# ------------------------------------------------------- directed: refusals
def test_semiinterval_containment_is_refused():
    """Theorem 2.8: phi1 is contained in phi2 semantically, but no symbol
    mapping witnesses it -- the optimizer must keep both rules rather than
    guess."""
    from repro.tableaux.containment import semiinterval_counterexample

    phi1, phi2, _w1, _w2 = semiinterval_counterexample()
    theory = DenseOrderTheory()
    assert rule_contained_in(phi1, phi2, theory) is None
    result = optimize_program([phi1, phi2], theory)
    assert len(result.rules) == 2
    assert result.stats.rules_subsumed == 0


def test_real_poly_is_a_complete_noop():
    theory = RealPolynomialTheory()
    rules = [
        Rule(
            RelationAtom("T", ("x", "y")),
            (RelationAtom("E", ("x", "y")),),
        ),
        Rule(
            RelationAtom("T", ("x", "y")),
            (RelationAtom("E", ("x", "y")), poly_eq("x", "x")),
        ),
    ]
    result = optimize_program(rules, theory)
    assert not result.changed
    assert result.stats.containment_checks == 0


# ------------------------------------------------------------ directed: views
def test_view_answerability_reads_the_materialized_fixpoint():
    theory = DenseOrderTheory()
    rules = parse_rules(TC, theory=theory)
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    view = MaterializedView(program, _chain_db(theory))
    registry = ViewRegistry()
    registry.register("TC", view)
    try:
        db = _chain_db(theory)
        definitions = registry.export_to(db)
        assert sorted(definitions) == ["TC"]
        consumer = parse_rules(
            "P(a, b) :- E(a, b).\nP(a, b) :- P(a, c), E(c, b).\n",
            theory=theory,
        )
        rewritten = DatalogProgram(
            consumer, theory, options=EngineOptions.all_on(), views=definitions
        )
        world, stats = rewritten.evaluate(db)
        assert stats.semantic_view_rewrites == 1
        plain = DatalogProgram(consumer, theory, options=SEMANTIC_OFF)
        plain_world, _stats = plain.evaluate(_chain_db(theory))
        assert _fingerprint(world, "P") == _fingerprint(plain_world, "P")
    finally:
        view.close()


def test_stale_views_are_not_answerable():
    theory = DenseOrderTheory()
    rules = parse_rules(TC, theory=theory)
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    view = MaterializedView(program, _chain_db(theory))
    registry = ViewRegistry()
    registry.register("TC", view)
    try:
        view._mark_stale("test-forced staleness")
        assert registry.definitions() == {}
        db = _chain_db(theory)
        assert registry.export_to(db) == {}
        assert "TC" not in db
    finally:
        view.close()


# ------------------------------------------------------ degradation behavior
def test_budget_exhaustion_degrades_to_fewer_passes():
    theory = DenseOrderTheory()
    rules = parse_rules(TC + "T(x, y) :- E(x, y), x < 3.\n", theory=theory)
    with supervised(Budget(joins=1)):
        result = optimize_program(rules, theory)
    assert result.stats.budget_tripped
    assert len(result.rules) == 3  # nothing removed, nothing broken
    # and the ambient-budget-free run still minimizes
    assert len(optimize_program(rules, theory).rules) == 2


def test_malformed_programs_are_left_for_evaluation_to_reject():
    theory = DenseOrderTheory()
    wrong = EqualityTheory()
    rules = [
        Rule(
            RelationAtom("T", ("x",)),
            (RelationAtom("E", ("x",)), wrong.equality("x", "y")),
        )
    ]
    result = optimize_program(rules, theory)
    assert isinstance(result, SemanticResult)
    assert not result.changed


@pytest.mark.chaos
def test_optimizer_under_chaos_stays_sound():
    """Injected theory faults may abort the analysis, never corrupt it:
    whatever rule set comes back must have the original fixpoint."""
    from repro.runtime.chaos import ChaosPolicy, ChaosTheory, chaos_scope

    text = TC + "T(x, y) :- E(x, y), x < 3.\n"
    for seed in range(8):
        theory = DenseOrderTheory()
        rules = parse_rules(text, theory=theory)
        with chaos_scope(ChaosPolicy(seed=seed, p=0.2)):
            result = optimize_program(rules, ChaosTheory(theory))
        assert len(result.rules) in (2, 3)
        program = DatalogProgram(
            list(result.rules), theory, options=SEMANTIC_OFF
        )
        world, _stats = program.evaluate(_chain_db(theory))
        plain = DatalogProgram(rules, theory, options=SEMANTIC_OFF)
        plain_world, _stats = plain.evaluate(_chain_db(theory))
        assert _fingerprint(world, "T") == _fingerprint(plain_world, "T")


# ----------------------------------------------------------- report plumbing
def test_diagnostics_carry_cql040_codes_and_witnesses():
    theory = DenseOrderTheory()
    rules = parse_rules(TC + "T(x, y) :- E(x, y), x < 3.\n", theory=theory)
    result = optimize_program(rules, theory)
    codes = {d.code for d in result.diagnostics}
    assert "CQL040" in codes
    assert result.witnesses  # index -> ContainmentWitness
    witness = next(iter(result.witnesses.values()))
    assert "->" in witness.describe()


def test_evaluation_stats_expose_semantic_counters():
    theory = DenseOrderTheory()
    rules = parse_rules(TC + "T(x, y) :- E(x, y), x < 3.\n", theory=theory)
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    _world, stats = program.evaluate(_chain_db(theory))
    assert stats.semantic_rules_subsumed == 1
    assert stats.semantic_containment_checks > 0
    payload = stats.as_dict()
    assert payload["semantic_rules_subsumed"] == 1
