"""Pass 4 (dead code): CQL020/021/022."""

import pytest

from repro.analysis import analyze_program, check_dead_code
from repro.constraints.dense_order import DenseOrderTheory
from repro.logic.parser import parse_rules


@pytest.fixture
def dense():
    return DenseOrderTheory()


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def test_unsatisfiable_body_is_cql020(dense):
    rules = parse_rules("P(x) :- E(x), x < 1, x > 2.", theory=dense)
    diagnostics = check_dead_code(rules, dense)
    assert _codes(diagnostics) == ["CQL020"]
    assert diagnostics[0].rule_index == 0


def test_satisfiable_body_is_clean(dense):
    rules = parse_rules("P(x) :- E(x), x > 1, x < 2.", theory=dense)
    assert check_dead_code(rules, dense) == []


def test_emptiness_propagates_to_cql022(dense):
    rules = parse_rules(
        "Mid(x) :- E(x), x < 1, x > 2. Out(x) :- Mid(x). Far(x) :- Out(x).",
        theory=dense,
    )
    diagnostics = check_dead_code(rules, dense)
    assert _codes(diagnostics) == ["CQL020", "CQL022", "CQL022"]
    dead = [d for d in diagnostics if d.code == "CQL022"]
    assert {d.predicate for d in dead} == {"Out", "Far"}


def test_alternative_live_rule_blocks_propagation(dense):
    # Mid has a second, satisfiable rule: not provably empty
    rules = parse_rules(
        "Mid(x) :- E(x), x < 1, x > 2. Mid(x) :- E(x). Out(x) :- Mid(x).",
        theory=dense,
    )
    diagnostics = check_dead_code(rules, dense)
    assert _codes(diagnostics) == ["CQL020"]


def test_edb_predicates_are_never_assumed_empty(dense):
    rules = parse_rules("P(x) :- Unknown(x).", theory=dense)
    assert check_dead_code(rules, dense) == []


def test_unused_predicate_needs_a_target(dense):
    rules = parse_rules("T(x) :- E(x). Aux(x) :- E(x).", theory=dense)
    assert check_dead_code(rules, dense) == []
    diagnostics = check_dead_code(rules, dense, target="T")
    assert _codes(diagnostics) == ["CQL021"]
    assert diagnostics[0].predicate == "Aux"


def test_target_reaches_its_support(dense):
    rules = parse_rules("T(x) :- S(x). S(x) :- E(x).", theory=dense)
    assert check_dead_code(rules, dense, target="T") == []


def test_analyze_program_threads_the_target(dense):
    rules = parse_rules("T(x) :- E(x). Aux(x) :- E(x).", theory=dense)
    report = analyze_program(rules, dense, target="T")
    assert [d.code for d in report.by_code("CQL021")] == ["CQL021"]
    assert report.ok  # warnings only
