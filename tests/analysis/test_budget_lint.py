"""CQL031 (unbudgeted-hard-program): advisory lint for the supervisor.

A program whose classification carries no polynomial complexity bound
(``not-closed`` or ``closed-Pi2p-hard``) can run forever or explode; the
linter warns unless the caller declares a resource budget -- either via
``EngineOptions(budget=...)`` (engine pre-flight) or the textual
``# budget: declared`` directive.
"""

from repro.analysis import analyze_program
from repro.analysis.lint import lint_text
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.logic.parser import parse_rules
from repro.runtime.budget import Budget

TC = "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y)."


def _codes(report):
    return [d.code for d in report.diagnostics]


class TestAnalyzerCQL031:
    def test_not_closed_program_without_budget_warns(self):
        theory = RealPolynomialTheory()
        report = analyze_program(parse_rules(TC, theory=theory), theory)
        assert "CQL031" in _codes(report)

    def test_budget_declared_silences_the_warning(self):
        theory = RealPolynomialTheory()
        report = analyze_program(
            parse_rules(TC, theory=theory), theory, budget_declared=True
        )
        assert "CQL031" not in _codes(report)

    def test_ptime_program_never_warns(self):
        theory = DenseOrderTheory()
        report = analyze_program(parse_rules(TC, theory=theory), theory)
        assert "CQL031" not in _codes(report)

    def test_cql031_is_a_warning_not_an_error(self):
        theory = RealPolynomialTheory()
        report = analyze_program(parse_rules(TC, theory=theory), theory)
        diagnostic = next(d for d in report.diagnostics if d.code == "CQL031")
        assert diagnostic.severity == "warning"
        assert "budget" in (diagnostic.hint or "")


class TestLintDirective:
    def test_textual_program_warns(self):
        report = lint_text(f"# theory: real_poly\n{TC}\n")
        assert "CQL031" in _codes(report)

    def test_budget_directive_silences(self):
        report = lint_text(
            f"# theory: real_poly\n# budget: declared\n{TC}\n"
        )
        assert "CQL031" not in _codes(report)


class TestEnginePreflight:
    def test_preflight_wires_engine_budget_into_analyzer(self):
        """The pre-flight gate passes ``budget_declared`` exactly when the
        engine options carry a budget (CQL031 is advisory, so the program
        constructs either way -- the report content is what changes)."""
        theory = RealPolynomialTheory()
        rules = parse_rules(TC, theory=theory)
        for options, expect_warning in [
            (EngineOptions(), True),
            (EngineOptions(budget=Budget(rounds=8)), False),
        ]:
            report = analyze_program(
                rules, theory, budget_declared=options.budget is not None
            )
            assert ("CQL031" in _codes(report)) is expect_warning

    def test_analyze_gate_tolerates_the_warning(self):
        # CQL031 is a warning: analyze=True must not reject the program
        theory = RealPolynomialTheory()
        program = DatalogProgram(
            parse_rules(TC, theory=theory),
            theory,
            allow_unsafe_recursion=True,
            options=EngineOptions(analyze=True),
        )
        assert program.rules

    def test_budgeted_evaluation_still_runs(self):
        theory = DenseOrderTheory()
        db = GeneralizedDatabase(theory)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(3):
            edge.add_point([i, i + 1])
        program = DatalogProgram(
            parse_rules(TC, theory=theory),
            theory,
            options=EngineOptions(budget=Budget(rounds=100)),
        )
        world, stats = program.evaluate(db)
        assert len(world.relation("T")) == 6
        assert not stats.incomplete
