"""Pass 2 (dependency graph): SCCs, recursion, stratifiability."""

import pytest

from repro.analysis import analyze_program, build_dependency_graph
from repro.constraints.dense_order import DenseOrderTheory


@pytest.fixture
def dense():
    return DenseOrderTheory()


def _rules(text, theory):
    from repro.logic.parser import parse_rules

    return parse_rules(text, theory=theory)


def test_idb_edb_partition(dense):
    graph = build_dependency_graph(
        _rules("T(x, y) :- E(x, y). S(x) :- T(x, x).", dense)
    )
    assert graph.idb == {"T", "S"}
    assert graph.edb == {"E"}


def test_self_loop_is_recursive(dense):
    graph = build_dependency_graph(
        _rules("T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).", dense)
    )
    assert graph.is_recursive()
    assert graph.recursive_predicates() == {"T"}


def test_mutual_recursion_shares_an_scc(dense):
    graph = build_dependency_graph(
        _rules("P(x) :- Q(x). Q(x) :- P(x). R(x) :- P(x).", dense)
    )
    assert graph.in_same_scc("P", "Q")
    assert not graph.in_same_scc("R", "P")
    assert graph.recursive_predicates() == {"P", "Q"}


def test_sccs_are_reverse_topological(dense):
    graph = build_dependency_graph(
        _rules("A(x) :- B(x). B(x) :- C(x). C(x) :- E(x).", dense)
    )
    order = {scc: i for i, scc in enumerate(graph.sccs)}
    # callee components come out before their callers
    assert order[("E",)] < order[("C",)] < order[("B",)] < order[("A",)]


def test_nonrecursive_program(dense):
    graph = build_dependency_graph(_rules("S(x) :- E(x, x).", dense))
    assert not graph.is_recursive()
    assert graph.is_stratifiable()


def test_stratified_negation_is_fine(dense):
    rules = _rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y). "
        "S(x, y) :- V(x), V(y), not T(x, y).",
        dense,
    )
    graph = build_dependency_graph(rules)
    assert graph.is_stratifiable()
    assert graph.recursive_negative_edges() == frozenset()
    report = analyze_program(rules, dense)
    assert report.stratifiable
    assert not report.by_code("CQL007")


def test_negation_through_recursion_is_cql007(dense):
    rules = _rules("P(x) :- V(x), not Q(x). Q(x) :- V(x), not P(x).", dense)
    graph = build_dependency_graph(rules)
    assert not graph.is_stratifiable()
    report = analyze_program(rules, dense)
    found = report.by_code("CQL007")
    assert len(found) == 1
    assert found[0].severity == "warning"
    assert not report.stratifiable
    assert report.ok  # a warning, not an error


def test_reachability(dense):
    graph = build_dependency_graph(
        _rules("A(x) :- B(x). B(x) :- E(x). C(x) :- E(x).", dense)
    )
    assert graph.reachable_from("A") == {"A", "B", "E"}
    assert "C" not in graph.reachable_from("A")


def test_deep_chain_does_not_hit_recursion_limit(dense):
    # 3000-predicate chain: the iterative Tarjan must not blow the stack
    text = " ".join(f"P{i}(x) :- P{i + 1}(x)." for i in range(3000))
    text += " P3000(x) :- E(x)."
    graph = build_dependency_graph(_rules(text, dense))
    assert len(graph.sccs) == 3002
    assert not graph.is_recursive()
