"""The ``python -m repro lint`` CLI: directives, output modes, exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.diagnostics import ProgramReport
from repro.analysis.lint import lint_text, main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"

TC_DENSE = """\
# theory: dense_order
# target: T
# relation: E/2
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

EX112 = """\
# theory: real_poly
G(x, y) :- y = 2 * x.
T(x, y) :- G(x, y).
T(x, y) :- T(x, z), G(z, y).
"""


def test_lint_text_classifies_dense_tc():
    report = lint_text(TC_DENSE)
    assert report.ok
    assert (report.complexity_class, report.theorem) == ("PTIME", "Thm 3.14.2")
    assert report.idb == ("T",) and report.edb == ("E",)


def test_lint_text_reports_cql010_on_example_112():
    report = lint_text(EX112)
    assert not report.ok
    assert [d.code for d in report.errors()] == ["CQL010"]
    assert report.complexity_class == "not-closed"


def test_allow_pragma_suppresses_but_still_reports():
    report = lint_text("# cqlint: allow(CQL010)\n" + EX112)
    assert report.ok
    (diagnostic,) = report.by_code("CQL010")
    assert diagnostic.suppressed
    assert "(suppressed)" in diagnostic.render()


def test_parse_error_is_cql000():
    report = lint_text("T(x :- E(x).")
    assert [d.code for d in report.errors()] == ["CQL000"]


def test_unsafe_rule_is_cql001():
    report = lint_text("T(x, y) :- E(x).")
    assert [d.code for d in report.errors()] == ["CQL001"]


def test_calculus_kind_with_output_schema():
    report = lint_text(
        "# kind: calculus\n# output: x\nexists y . R(x) and x < y\n"
    )
    assert report.kind == "calculus"
    assert report.ok
    assert (report.complexity_class, report.theorem) == ("LOGSPACE", "Thm 3.14.1")


def test_calculus_output_mismatch_is_cql006():
    report = lint_text("# kind: calculus\n# output: x, z\nexists y . R(x) and x < y\n")
    assert [d.code for d in report.errors()] == ["CQL006"]


def test_cli_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.cql"
    good.write_text(TC_DENSE)
    bad = tmp_path / "bad.cql"
    bad.write_text(EX112)
    assert main([str(good)]) == 0
    assert main([str(bad)]) == 1
    capsys.readouterr()
    # warnings fail only under --strict
    warn = tmp_path / "warn.cql"
    warn.write_text("P(x) :- E(x), x < 1, x > 2.\n")
    assert main([str(warn)]) == 0
    assert main([str(warn), "--strict"]) == 1
    assert main([str(tmp_path / "missing.cql")]) == 2
    capsys.readouterr()


def test_cli_json_round_trips(tmp_path, capsys):
    path = tmp_path / "tc.cql"
    path.write_text(TC_DENSE)
    assert main([str(path), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    report = ProgramReport.from_dict(document["files"][0]["report"])
    assert report.as_dict() == document["files"][0]["report"]
    assert report.complexity_class == "PTIME"


def test_cli_stats_records_benchjson(tmp_path, capsys, monkeypatch):
    bench = tmp_path / "bench.json"
    monkeypatch.setenv("REPRO_BENCH_JSON", str(bench))
    path = tmp_path / "tc.cql"
    path.write_text(TC_DENSE)
    assert main([str(path), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "per-pass seconds:" in out
    recorded = json.loads(bench.read_text())["records"]["lint_stats"]
    assert recorded["files"] == 1
    assert set(recorded["pass_seconds"]) == {
        "well_formedness",
        "dependencies",
        "closure",
        "dead_code",
        "classification",
    }


def test_cli_lints_a_directory(tmp_path, capsys):
    (tmp_path / "a.cql").write_text(TC_DENSE)
    (tmp_path / "b.cql").write_text("# cqlint: allow(CQL010)\n" + EX112)
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 file(s) linted: ok" in out
    assert "(suppressed)" in out


def test_cli_lints_a_spec_json(tmp_path, capsys):
    from repro.conformance.generators import generate_case

    spec = generate_case("dense_order", 7)
    path = tmp_path / "case.json"
    path.write_text(json.dumps({"spec": spec.as_dict()}))
    assert main([str(path)]) == 0
    capsys.readouterr()


@pytest.mark.parametrize(
    ("name", "expect_exit"),
    [
        ("transitive_closure_dense.cql", 0),
        ("ex112_not_closed.cql", 0),  # CQL010 suppressed by its pragma
        ("stratified_unreachable.cql", 0),
        ("dead_rules_demo.cql", 0),
        ("between_query.cql", 0),
    ],
)
def test_shipped_examples_lint_clean(name, expect_exit, capsys):
    assert main([str(EXAMPLES / name)]) == expect_exit
    capsys.readouterr()


def test_shipped_ex112_reports_the_diagnostic(capsys):
    main([str(EXAMPLES / "ex112_not_closed.cql")])
    out = capsys.readouterr().out
    assert "CQL010" in out and "(suppressed)" in out
