"""The opt-in engine pre-flight (``EngineOptions(analyze=True)``)."""

import pytest

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityAtom
from repro.constraints.real_poly import RealPolynomialTheory
from repro.constraints.terms import Var
from repro.core.datalog import DatalogProgram, EngineOptions, Rule
from repro.errors import StaticAnalysisError
from repro.logic.parser import parse_rules
from repro.logic.syntax import RelationAtom


def _mismatched_rules():
    """Passes Rule's constructor and the arity check, but carries a
    constraint atom of the wrong theory (CQL003)."""
    return [
        Rule(
            RelationAtom("P", ("x",)),
            (RelationAtom("E", ("x",)), EqualityAtom("=", Var("x"), Var("y"))),
        )
    ]


def test_default_options_skip_the_preflight():
    DatalogProgram(_mismatched_rules(), DenseOrderTheory())


def test_analyze_true_raises_on_error_diagnostics():
    with pytest.raises(StaticAnalysisError) as excinfo:
        DatalogProgram(
            _mismatched_rules(),
            DenseOrderTheory(),
            options=EngineOptions(analyze=True),
        )
    assert any(d.code == "CQL003" for d in excinfo.value.diagnostics)
    assert "CQL003" in str(excinfo.value)


def test_clean_program_passes_the_preflight():
    theory = DenseOrderTheory()
    rules = parse_rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).", theory=theory
    )
    program = DatalogProgram(rules, theory, options=EngineOptions(analyze=True))
    assert program.is_recursive()


def test_warnings_do_not_raise():
    theory = DenseOrderTheory()
    rules = parse_rules("P(x) :- E(x), x < 1, x > 2.", theory=theory)  # CQL020
    DatalogProgram(rules, theory, options=EngineOptions(analyze=True))


def test_unsafe_recursion_opt_in_filters_cql010():
    theory = RealPolynomialTheory()
    rules = parse_rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).", theory=theory
    )
    # the guard is bypassed by allow_unsafe_recursion; the pre-flight must
    # not re-raise the very condition the caller just opted into
    DatalogProgram(
        rules,
        theory,
        allow_unsafe_recursion=True,
        options=EngineOptions(analyze=True),
    )


def test_analyze_flag_is_not_an_ablation_dimension():
    assert "analyze" not in EngineOptions().as_dict()
    assert EngineOptions.all_off().analyze is False
