"""Pass 1 (well-formedness): CQL001-CQL005."""

from dataclasses import dataclass

import pytest

from repro.analysis import analyze_program, check_safety
from repro.analysis.diagnostics import CODES, Diagnostic
from repro.constraints.dense_order import DenseOrderTheory, OrderAtom
from repro.constraints.equality import EqualityAtom
from repro.constraints.terms import Var
from repro.core.datalog import Rule
from repro.logic.parser import parse_rules
from repro.logic.syntax import RelationAtom


@dataclass(frozen=True)
class _LooseRule:
    """A RuleLike that skips Rule's constructor safety guard."""

    head: RelationAtom
    body: tuple

    @property
    def positive_atoms(self):
        return [a for a in self.body if isinstance(a, RelationAtom)]

    @property
    def negative_atoms(self):
        return []

    @property
    def constraint_atoms(self):
        return [a for a in self.body if not isinstance(a, RelationAtom)]

    def __str__(self):
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}"


@pytest.fixture
def dense():
    return DenseOrderTheory()


def _codes(diagnostics):
    return [d.code for d in diagnostics]


def test_clean_program_has_no_findings(dense):
    rules = parse_rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).", theory=dense
    )
    assert check_safety(rules, dense) == []


def test_unsafe_head_variable_is_cql001(dense):
    rule = _LooseRule(
        RelationAtom("P", ("x", "y")), (RelationAtom("E", ("x",)),)
    )
    diagnostics = check_safety([rule], dense)
    assert _codes(diagnostics) == ["CQL001"]
    assert "['y']" in diagnostics[0].message


def test_head_variable_bound_by_constraint_is_safe(dense):
    # y occurs only in the constraint x < y: safe (closed-form binding)
    rules = parse_rules("P(x, y) :- E(x, x), x < y.", theory=dense)
    assert check_safety(rules, dense) == []


def test_arity_mismatch_is_cql002(dense):
    rules = [
        Rule(RelationAtom("P", ("x",)), (RelationAtom("E", ("x", "y")),)),
        Rule(RelationAtom("Q", ("x",)), (RelationAtom("E", ("x",)),)),
    ]
    diagnostics = check_safety(rules, dense)
    assert _codes(diagnostics) == ["CQL002"]
    assert diagnostics[0].predicate == "E"
    assert diagnostics[0].rule_index == 1


def test_edb_schema_feeds_the_arity_check(dense):
    rules = parse_rules("P(x) :- E(x, x).", theory=dense)
    assert check_safety(rules, dense) == []
    diagnostics = check_safety(rules, dense, edb_schemas={"E": 3})
    assert _codes(diagnostics) == ["CQL002"]


def test_wrong_theory_atom_is_cql003(dense):
    rule = Rule(
        RelationAtom("P", ("x",)),
        (RelationAtom("E", ("x",)), EqualityAtom("=", Var("x"), Var("x"))),
    )
    diagnostics = check_safety([rule], dense)
    assert _codes(diagnostics) == ["CQL003"]


def test_constraint_only_variable_is_cql004(dense):
    rule = Rule(
        RelationAtom("P", ("x",)),
        (RelationAtom("E", ("x",)), OrderAtom("<", Var("z"), Var("x"))),
    )
    diagnostics = check_safety([rule], dense)
    assert _codes(diagnostics) == ["CQL004"]
    assert "['z']" in diagnostics[0].message


def test_duplicate_rule_is_cql005(dense):
    rules = parse_rules("P(x) :- E(x). P(x) :- E(x).", theory=dense)
    diagnostics = check_safety(rules, dense)
    assert _codes(diagnostics) == ["CQL005"]
    assert diagnostics[0].rule_index == 1


def test_report_collects_and_sorts_by_severity(dense):
    rules = parse_rules(
        "P(x) :- E(x). P(x) :- E(x). Q(x, y) :- E(x), x < y.", theory=dense
    )
    report = analyze_program(rules, dense)
    codes = [d.code for d in report.diagnostics]
    # severity-major ordering: warnings before the CQL030 info record
    assert codes == ["CQL005", "CQL030"]
    assert report.ok


def test_every_code_has_registry_metadata():
    for code, info in CODES.items():
        assert info.code == code
        assert info.slug and info.summary
        assert info.severity in ("error", "warning", "info")


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("CQL999", "nope")
