"""Pass 5 (classifier): the paper's Section 1.3 complexity table."""

import pytest

from repro.analysis import (
    LOGSPACE,
    NC,
    NOT_CLOSED,
    PI2P_HARD,
    PTIME,
    classify_calculus,
    classify_program,
)
from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.constraints.boolean import BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.core.datalog import Rule
from repro.logic.parser import parse_rules
from repro.logic.syntax import RelationAtom


def _tc(theory):
    return parse_rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).", theory=theory
    )


def _flat(theory):
    return parse_rules("S(x, y) :- E(x, y).", theory=theory)


def test_real_poly_recursive_is_not_closed():
    theory = RealPolynomialTheory()
    result = classify_program(_tc(theory), theory)
    assert result.complexity_class == NOT_CLOSED
    assert result.theorem == "Example 1.12"


def test_real_poly_nonrecursive_is_nc():
    theory = RealPolynomialTheory()
    result = classify_program(_flat(theory), theory)
    assert (result.complexity_class, result.theorem) == (NC, "Thm 2.3")


def test_dense_nonrecursive_positive_is_logspace():
    theory = DenseOrderTheory()
    result = classify_program(_flat(theory), theory)
    assert (result.complexity_class, result.theorem) == (LOGSPACE, "Thm 3.14.1")


def test_dense_recursive_is_ptime():
    theory = DenseOrderTheory()
    result = classify_program(_tc(theory), theory)
    assert (result.complexity_class, result.theorem) == (PTIME, "Thm 3.14.2")


def test_dense_negation_is_ptime_even_without_recursion():
    theory = DenseOrderTheory()
    rules = parse_rules("S(x) :- V(x), not E(x).", theory=theory)
    result = classify_program(rules, theory)
    assert (result.complexity_class, result.theorem) == (PTIME, "Thm 3.14.2")


def test_linear_recursion_gets_the_fringe_note():
    theory = DenseOrderTheory()
    result = classify_program(_tc(theory), theory)
    assert result.note is not None and "Thm 3.21" in result.note


def test_nonlinear_recursion_has_no_fringe_note():
    theory = DenseOrderTheory()
    rules = parse_rules(
        "T(x, y) :- E(x, y). T(x, y) :- T(x, z), T(z, y).", theory=theory
    )
    result = classify_program(rules, theory)
    assert result.note is None


def test_equality_table_rows():
    theory = EqualityTheory()
    assert classify_program(_flat(theory), theory).theorem == "Thm 4.11.1"
    assert classify_program(_flat(theory), theory).complexity_class == LOGSPACE
    recursive = classify_program(_tc(theory), theory)
    assert (recursive.complexity_class, recursive.theorem) == (PTIME, "Thm 4.11.2")


def test_boolean_is_closed_but_pi2p_hard():
    theory = BooleanTheory(FreeBooleanAlgebra.with_generators(2))
    rules = [
        Rule(RelationAtom("T", ("x",)), (RelationAtom("E", ("x",)),)),
        Rule(RelationAtom("T", ("x",)), (RelationAtom("T", ("x",)),)),
    ]
    result = classify_program(rules, theory)
    assert result.complexity_class == PI2P_HARD
    assert "5.6" in result.theorem and "5.11" in result.theorem


@pytest.mark.parametrize(
    ("factory", "expected_class", "expected_theorem"),
    [
        (DenseOrderTheory, LOGSPACE, "Thm 3.14.1"),
        (EqualityTheory, LOGSPACE, "Thm 4.11.1"),
        (RealPolynomialTheory, NC, "Thm 2.3"),
        (
            lambda: BooleanTheory(FreeBooleanAlgebra.with_generators(2)),
            PI2P_HARD,
            "Thm 5.11",
        ),
    ],
)
def test_calculus_table(factory, expected_class, expected_theorem):
    result = classify_calculus(factory())
    assert (result.complexity_class, result.theorem) == (
        expected_class,
        expected_theorem,
    )


def test_classification_round_trips():
    theory = DenseOrderTheory()
    result = classify_program(_tc(theory), theory)
    data = result.as_dict()
    assert data["complexity_class"] == PTIME
    assert data["theorem"] == "Thm 3.14.2"
    assert "fixpoint" in data["rationale"]
