"""Property: every conformance-generated program analyzes clean, and the
classifier lands on the complexity class the generator's shape implies.

This is the static half of the differential harness contract: ``run_case``
gates every spec through ``analyze_spec`` before the strategy fan-out, so a
generator emitting an ill-formed program would surface both here and as a
``lint`` discrepancy in the conformance loop.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import LOGSPACE, NC, PI2P_HARD, PTIME
from repro.conformance.generators import THEORY_NAMES, generate_case
from repro.conformance.runner import analyze_spec

#: generated datalog shapes per theory: dense/equality/boolean emit
#: transitive-closure-style recursion, real_poly stays nonrecursive
#: (Example 1.12 forbids the recursive shape there)
DATALOG_CLASSES = {
    "dense_order": {PTIME},
    "equality": {PTIME},
    "boolean": {PI2P_HARD},
    "real_poly": {NC},
}

CALCULUS_CLASSES = {
    "dense_order": {LOGSPACE},
    "equality": {LOGSPACE},
    "boolean": {PI2P_HARD},
    "real_poly": {NC},
}


@given(
    theory=st.sampled_from(sorted(THEORY_NAMES)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_generated_programs_analyze_clean(theory, seed):
    spec = generate_case(theory, seed)
    report = analyze_spec(spec)
    assert report.ok, [d.render() for d in report.errors()]
    assert report.theory == spec.theory


@given(
    theory=st.sampled_from(sorted(THEORY_NAMES)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_classifier_matches_the_generated_shape(theory, seed):
    spec = generate_case(theory, seed)
    report = analyze_spec(spec)
    if spec.kind == "datalog":
        expected = DATALOG_CLASSES[theory]
        if theory in ("dense_order", "equality") and not report.recursive:
            # small seeds occasionally emit nonrecursive rule sets
            expected = expected | {LOGSPACE}
    else:  # calculus and qe kinds classify as calculus queries
        expected = CALCULUS_CLASSES[theory]
    assert report.complexity_class in expected, (
        spec.kind,
        report.complexity_class,
    )
    assert report.theorem


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_real_poly_datalog_cases_stay_nonrecursive(seed):
    spec = generate_case("real_poly", seed)
    report = analyze_spec(spec)
    if spec.kind == "datalog":
        assert not report.recursive
        assert not report.by_code("CQL010")
