"""Tests for the sign-condition DNF algebra shared by the QE engines."""

from fractions import Fraction

import pytest

from repro.poly.polynomial import poly_var
from repro.qe.signs import (
    DNF_FALSE,
    DNF_TRUE,
    SignCond,
    conj_holds,
    dedup,
    dnf_and,
    dnf_holds,
    dnf_or,
    dnf_single,
    negate_cond,
    sign_cond,
    simplify_conj,
)

x = poly_var("x")
y = poly_var("y")


class TestSignCond:
    def test_evaluate(self):
        assert SignCond(x - 1, "<").evaluate({"x": 0})
        assert not SignCond(x - 1, "<").evaluate({"x": 1})
        assert SignCond(x - 1, "<=").evaluate({"x": 1})
        assert SignCond(x - 1, "=").evaluate({"x": 1})
        assert SignCond(x - 1, "!=").evaluate({"x": 2})

    def test_check_sign(self):
        cond = SignCond(x, "<=")
        assert cond.check_sign(-1) and cond.check_sign(0)
        assert not cond.check_sign(1)

    def test_sign_cond_flips_gt(self):
        cond = sign_cond(x - 1, ">")
        assert cond.op == "<"
        assert cond.evaluate({"x": 2})

    def test_bad_op(self):
        with pytest.raises(ValueError):
            SignCond(x, ">")


class TestNegation:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<="])
    def test_involution_semantics(self, op):
        cond = SignCond(x - 1, op)
        negated = negate_cond(cond)
        double = negate_cond(negated)
        for value in (-1, 0, 1, 2):
            point = {"x": Fraction(value)}
            assert cond.evaluate(point) != negated.evaluate(point)
            assert cond.evaluate(point) == double.evaluate(point)


class TestDnfAlgebra:
    def test_true_false_units(self):
        some = dnf_single(SignCond(x, "<"))
        assert dnf_and(DNF_TRUE, some) == some
        assert dnf_and(DNF_FALSE, some) == DNF_FALSE
        assert dnf_or(DNF_FALSE, some) == some

    def test_distribution(self):
        a = dnf_or(dnf_single(SignCond(x, "<")), dnf_single(SignCond(x - 5, "=")))
        b = dnf_single(SignCond(y, "<"))
        product = dnf_and(a, b)
        assert len(product) == 2
        assert all(len(conj) == 2 for conj in product)

    def test_ground_simplification(self):
        true_cond = SignCond(x * 0 - 1, "<")  # -1 < 0
        false_cond = SignCond(x * 0 + 1, "<")  # 1 < 0
        assert simplify_conj((true_cond,)) == ()
        assert simplify_conj((false_cond,)) is None
        assert dnf_single(false_cond) == DNF_FALSE

    def test_duplicate_conditions_merged(self):
        cond = SignCond(x, "<")
        assert simplify_conj((cond, cond)) == (cond,)

    def test_dedup(self):
        a = SignCond(x, "<")
        b = SignCond(y, "<")
        dnf = [(a, b), (b, a), (a,)]
        assert len(dedup(dnf)) == 2

    def test_holds(self):
        dnf = [
            (SignCond(x, "<"),),
            (SignCond(x - 5, "="),),
        ]
        assert dnf_holds(dnf, {"x": -1})
        assert dnf_holds(dnf, {"x": 5})
        assert not dnf_holds(dnf, {"x": 1})
        assert conj_holds(dnf[0], {"x": -3})
