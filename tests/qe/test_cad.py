"""Tests for the bivariate cylindrical algebraic decomposition."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnsupportedEliminationError
from repro.poly.polynomial import poly_var
from repro.poly.univariate import UPoly
from repro.qe.cad import cad_eliminate, cad_satisfiable, decompose_line
from repro.qe.signs import SignCond, dnf_holds

x = poly_var("x")
y = poly_var("y")


def cond(poly, op):
    return SignCond(poly, op)


class TestDecomposeLine:
    def test_no_roots(self):
        cells = decompose_line([UPoly.from_fractions([1, 0, 1])])  # x^2+1
        assert len(cells) == 1 and cells[0].kind == "interval"

    def test_single_rational_root(self):
        cells = decompose_line([UPoly.from_fractions([-1, 1])])  # x - 1
        kinds = [c.kind for c in cells]
        assert kinds == ["interval", "point", "interval"]

    def test_two_polys_shared_root(self):
        # x(x-1) and (x-1)(x+1): roots -1, 0, 1 -> 7 cells
        p1 = UPoly.from_fractions([0, -1, 1])
        p2 = UPoly.from_fractions([-1, 0, 1])
        cells = decompose_line([p1, p2])
        assert sum(1 for c in cells if c.kind == "point") == 3
        assert len(cells) == 7

    def test_irrational_roots(self):
        cells = decompose_line([UPoly.from_fractions([-2, 0, 1])])  # x^2-2
        points = [c for c in cells if c.kind == "point"]
        assert len(points) == 2


class TestUnivariateDecision:
    def test_sum_of_squares(self):
        assert not cad_satisfiable([cond(x * x + 1, "<=")])
        assert cad_satisfiable([cond(x * x + 1, ">" if False else "<=")]) is False

    def test_equation_with_irrational_root(self):
        assert cad_satisfiable([cond(x * x - 2, "="), cond(x, "<")])
        assert cad_satisfiable([cond(x * x - 2, "="), cond(x - 2, "<"), cond(1 - x, "<")])
        assert not cad_satisfiable([cond(x * x - 2, "="), cond(x - 1, "="), ])

    def test_cubic(self):
        # x^3 - x > 0 somewhere in (-1, 0)
        assert cad_satisfiable([cond(-(x**3 - x), "<"), cond(x, "<")])


class TestEliminate:
    def test_circle(self):
        # exists y: x^2 + y^2 = 1  iff  -1 <= x <= 1
        dnf = cad_eliminate([cond(x * x + y * y - 1, "=")], "y")
        for value, expected in [
            (0, True),
            (1, True),
            (-1, True),
            (Fraction(1, 2), True),
            (2, False),
            (Fraction(-3, 2), False),
        ]:
            assert dnf_holds(dnf, {"x": Fraction(value)}) == expected, value

    def test_quartic(self):
        # exists y: y^4 = x  iff  x >= 0   (degree 4: beyond VS)
        dnf = cad_eliminate([cond(y**4 - x, "=")], "y")
        assert dnf_holds(dnf, {"x": 5})
        assert dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": -1})

    def test_cubic_in_y_with_constraint(self):
        # exists y: y^3 = x and y > 1  iff  x > 1
        dnf = cad_eliminate([cond(y**3 - x, "="), cond(1 - y, "<")], "y")
        assert dnf_holds(dnf, {"x": 8})
        assert not dnf_holds(dnf, {"x": 1})
        assert not dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": -8})

    def test_mixed_x_condition(self):
        # exists y: x*y = 1 and x > 0  iff x > 0
        dnf = cad_eliminate([cond(x * y - 1, "="), cond(-x, "<")], "y")
        assert dnf_holds(dnf, {"x": 3})
        assert not dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": -3})

    def test_ellipse_strict_interior(self):
        # exists y: x^2/4 + y^2 < 1  iff  -2 < x < 2
        dnf = cad_eliminate([cond(x * x + 4 * y * y - 4, "<")], "y")
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": Fraction(19, 10)})
        assert not dnf_holds(dnf, {"x": 2})
        assert not dnf_holds(dnf, {"x": -2})

    def test_nonsquarefree_input(self):
        # exists y: (y - x)^2 <= 0  iff  always (y = x works)
        dnf = cad_eliminate([cond((y - x) * (y - x), "<=")], "y")
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": 7})

    def test_output_is_exact_on_algebraic_boundaries(self):
        # exists y: x^2 + y^2 = 2 and y != 0  iff  -sqrt2 < x < sqrt2
        dnf = cad_eliminate(
            [cond(x * x + y * y - 2, "="), cond(y, "!=")], "y"
        )
        assert dnf_holds(dnf, {"x": Fraction(7, 5)})  # 1.4 < sqrt2
        assert not dnf_holds(dnf, {"x": Fraction(3, 2)})  # 1.5 > sqrt2
        assert dnf_holds(dnf, {"x": 0})

    def test_variable_absent(self):
        dnf = cad_eliminate([cond(x - 1, "<")], "y")
        assert dnf_holds(dnf, {"x": 0})

    def test_three_variables_rejected(self):
        z = poly_var("z")
        with pytest.raises(UnsupportedEliminationError):
            cad_eliminate([cond(x + y + z**3, "=")], "z")


class TestSatisfiable:
    def test_bivariate_system(self):
        # circle and line intersect
        assert cad_satisfiable(
            [cond(x * x + y * y - 1, "="), cond(y - x, "=")]
        )
        # circle and distant line do not
        assert not cad_satisfiable(
            [cond(x * x + y * y - 1, "="), cond(y - x - 5, "=")]
        )

    def test_tangency(self):
        # parabola y = x^2 and line y = -1 never meet
        assert not cad_satisfiable(
            [cond(y - x * x, "="), cond(y + 1, "=")]
        )
        # but y = 0 touches it
        assert cad_satisfiable([cond(y - x * x, "="), cond(y, "=")])

    def test_ground(self):
        one = poly_var("x") * 0 + 1
        assert not cad_satisfiable([cond(one, "<")])


class TestAgainstVS:
    """Cross-validate CAD against virtual substitution on quadratics."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(-2, 2),
        st.integers(-2, 2),
        st.integers(-2, 2),
        st.sampled_from(["=", "<", "<="]),
    )
    def test_conic_projection_matches_vs(self, a, b, c, op):
        from repro.qe.virtual_substitution import vs_eliminate

        poly = a * y * y + b * y + c + x * x - 1
        if "y" not in poly.variables():
            return
        conds = [cond(poly, op)]
        via_cad = cad_eliminate(conds, "y")
        via_vs = vs_eliminate(conds, "y")
        for value in [Fraction(v, 2) for v in range(-6, 7)]:
            point = {"x": value}
            assert dnf_holds(via_cad, point) == dnf_holds(via_vs, point), (
                poly,
                op,
                value,
            )
