"""Deep tests for CAD lifting over algebraic base points (the Q(alpha) stack)."""

from fractions import Fraction


from repro.poly.algebraic import RealAlgebraic
from repro.poly.numberfield import NumberField, cauchy_bound_over_field
from repro.poly.polynomial import poly_var
from repro.poly.univariate import QQ, SturmContext, UPoly
from repro.qe.cad import (
    LineCell,
    _FieldOps,
    _cell_field,
    _exists_on_stack,
    cad_eliminate,
    cell_sign,
    decompose_line,
)
from repro.qe.signs import SignCond, dnf_holds

x = poly_var("x")
y = poly_var("y")


def sqrt2_cell() -> LineCell:
    context = SturmContext(UPoly.from_fractions([-2, 0, 1]))
    interval = [r for r in context.isolate_roots() if r.low >= 0][0]
    return LineCell("point", host=context, interval=interval)


class TestNumberFieldStack:
    def test_stack_over_sqrt2(self):
        # over x = sqrt(2): does exists y . x^2 + y^2 = 2 hold?  (y = 0)
        cell = sqrt2_cell()
        conds = [SignCond(x * x + y * y - 2, "=")]
        assert _exists_on_stack(conds, "x", "y", cell)

    def test_stack_over_sqrt2_strict_fails(self):
        # over x = sqrt(2): exists y . x^2 + y^2 = 2 and y != 0 is false
        cell = sqrt2_cell()
        conds = [SignCond(x * x + y * y - 2, "="), SignCond(y, "!=")]
        assert not _exists_on_stack(conds, "x", "y", cell)

    def test_decompose_line_over_number_field(self):
        # roots of y^2 - alpha over Q(alpha), alpha = sqrt(2)
        alpha = RealAlgebraic(
            sqrt2_cell().host.poly, sqrt2_cell().interval
        )
        field = NumberField(alpha)
        poly = UPoly([field.neg(field.alpha_elem()), field.zero(), field.one()], field)
        cells = decompose_line([poly], field)
        kinds = [c.kind for c in cells]
        assert kinds == ["interval", "point", "interval", "point", "interval"]
        ops = _FieldOps(field)
        signs = [cell_sign(ops, poly, c) for c in cells]
        assert signs == [1, 0, -1, 0, 1]

    def test_cell_field_selection(self):
        interval_cell = LineCell("interval", rational_sample=Fraction(1, 2))
        assert _cell_field(interval_cell) is QQ
        point = sqrt2_cell()
        field = _cell_field(point)
        assert isinstance(field, NumberField)


class TestEliminationWithAlgebraicBoundaries:
    def test_annulus_projection(self):
        # exists y: 1 <= x^2 + y^2 <= 2 -- projection is [-sqrt2, sqrt2]
        conds = [
            SignCond(1 - x * x - y * y, "<="),
            SignCond(x * x + y * y - 2, "<="),
        ]
        dnf = cad_eliminate(conds, "y")
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": 1})
        assert dnf_holds(dnf, {"x": Fraction(7, 5)})  # 1.4 < sqrt2
        assert not dnf_holds(dnf, {"x": Fraction(3, 2)})  # 1.5 > sqrt2
        assert not dnf_holds(dnf, {"x": -2})

    def test_two_algebraic_boundaries(self):
        # exists y: x^2 + y^2 = 3 and y^2 <= 1 -- x in [-sqrt3,-sqrt2] u [sqrt2,sqrt3]
        conds = [
            SignCond(x * x + y * y - 3, "="),
            SignCond(y * y - 1, "<="),
        ]
        dnf = cad_eliminate(conds, "y")
        assert dnf_holds(dnf, {"x": Fraction(3, 2)})   # 1.5 in [sqrt2, sqrt3]
        assert not dnf_holds(dnf, {"x": 1})            # 1 < sqrt2
        assert not dnf_holds(dnf, {"x": 2})            # 2 > sqrt3
        assert dnf_holds(dnf, {"x": Fraction(-3, 2)})

    def test_quartic_with_linear_side(self):
        # exists y: y^4 + x^4 = 2 -- projection is [-2^(1/4), 2^(1/4)]
        conds = [SignCond(y**4 + x**4 - 2, "=")]
        dnf = cad_eliminate(conds, "y")
        assert dnf_holds(dnf, {"x": 1})
        assert dnf_holds(dnf, {"x": Fraction(11, 10)})  # 1.1 < 2^(1/4) ~ 1.189
        assert not dnf_holds(dnf, {"x": Fraction(6, 5)})  # 1.2 > 2^(1/4)


class TestBoundsOverField:
    def test_cauchy_bound_reasonable(self):
        alpha = RealAlgebraic(
            sqrt2_cell().host.poly, sqrt2_cell().interval
        )
        field = NumberField(alpha)
        # y^2 - alpha: roots +- 2^(1/4) ~ 1.19
        poly = UPoly([field.neg(field.alpha_elem()), field.zero(), field.one()], field)
        bound = cauchy_bound_over_field(poly, field)
        assert bound >= Fraction(119, 100)
