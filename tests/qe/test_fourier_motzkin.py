"""Tests for Fourier-Motzkin elimination."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.polynomial import poly_var
from repro.qe.fourier_motzkin import FMNotApplicableError, fourier_motzkin_eliminate
from repro.qe.signs import SignCond, dnf_holds

x = poly_var("x")
y = poly_var("y")
z = poly_var("z")


def cond(poly, op):
    return SignCond(poly, op)


class TestBasics:
    def test_interval(self):
        # exists z: x < z and z < y  iff  x < y
        dnf = fourier_motzkin_eliminate(
            [cond(x - z, "<"), cond(z - y, "<")], "z"
        )
        assert dnf_holds(dnf, {"x": 0, "y": 1})
        assert not dnf_holds(dnf, {"x": 1, "y": 0})
        assert not dnf_holds(dnf, {"x": 0, "y": 0})

    def test_weak_bounds(self):
        dnf = fourier_motzkin_eliminate(
            [cond(x - z, "<="), cond(z - y, "<=")], "z"
        )
        assert dnf_holds(dnf, {"x": 0, "y": 0})

    def test_unbounded(self):
        # exists z: z > x is always true
        dnf = fourier_motzkin_eliminate([cond(x - z, "<")], "z")
        assert dnf_holds(dnf, {"x": 100})

    def test_equality_substitution(self):
        # exists z: z = x + 1 and z < y  iff  x + 1 < y
        dnf = fourier_motzkin_eliminate(
            [cond(z - x - 1, "="), cond(z - y, "<")], "z"
        )
        assert dnf_holds(dnf, {"x": 0, "y": 2})
        assert not dnf_holds(dnf, {"x": 0, "y": 1})

    def test_disequality_split(self):
        # exists z: 0 <= z <= 0 and z != x  iff  x != 0
        dnf = fourier_motzkin_eliminate(
            [cond(-z, "<="), cond(z, "<="), cond(z - x, "!=")], "z"
        )
        assert dnf_holds(dnf, {"x": 1})
        assert not dnf_holds(dnf, {"x": 0})

    def test_contradiction(self):
        dnf = fourier_motzkin_eliminate(
            [cond(z - 1, "<"), cond(2 - z, "<")], "z"
        )
        # exists z: z < 1 and z > 2 is false
        assert dnf == [] or not dnf_holds(dnf, {})

    def test_scaled_coefficients(self):
        # exists z: 2z < x and y < 3z  iff  y/3 < x/2  iff  2y < 3x
        dnf = fourier_motzkin_eliminate(
            [cond(2 * z - x, "<"), cond(y - 3 * z, "<")], "z"
        )
        assert dnf_holds(dnf, {"x": 2, "y": 1})
        assert not dnf_holds(dnf, {"x": 1, "y": 2})


class TestRejections:
    def test_nonlinear_rejected(self):
        with pytest.raises(FMNotApplicableError):
            fourier_motzkin_eliminate([cond(z * z - x, "<")], "z")

    def test_parametric_coefficient_rejected(self):
        with pytest.raises(FMNotApplicableError):
            fourier_motzkin_eliminate([cond(y * z - 1, "<")], "z")


@st.composite
def linear_system(draw):
    conds = []
    for _ in range(draw(st.integers(1, 5))):
        cz = draw(st.integers(-3, 3))
        cx = draw(st.integers(-2, 2))
        const = draw(st.integers(-4, 4))
        op = draw(st.sampled_from(["<", "<=", "=", "!="]))
        poly = cz * z + cx * x + const
        if poly.is_constant():
            continue
        conds.append(SignCond(poly, op))
    return conds


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(linear_system(), st.integers(-6, 6))
    def test_projection_semantics(self, conds, x_value):
        """The eliminated formula holds at x iff some z in a test grid works
        (the grid includes all critical points of the system)."""
        dnf = fourier_motzkin_eliminate(conds, "z")
        holds = dnf_holds(dnf, {"x": x_value})
        # candidate z values: all boundary solutions plus midpoints
        candidates = set()
        boundaries = []
        for cond in conds:
            coeffs, const = cond.poly.as_linear()
            cz = coeffs.get("z", Fraction(0))
            if cz:
                boundary = -(coeffs.get("x", Fraction(0)) * x_value + const) / cz
                boundaries.append(boundary)
        boundaries.sort()
        for b in boundaries:
            candidates.update([b, b - 1, b + 1])
        for a, b in zip(boundaries, boundaries[1:]):
            candidates.add((a + b) / 2)
        candidates.update([Fraction(0), Fraction(10**6), Fraction(-(10**6))])
        witness = any(
            all(c.evaluate({"x": x_value, "z": candidate}) for c in conds)
            for candidate in candidates
        )
        assert holds == witness
