"""Tests for Loos-Weispfenning virtual substitution (degrees 1 and 2)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnsupportedEliminationError
from repro.poly.polynomial import poly_var
from repro.qe.signs import SignCond, dnf_holds
from repro.qe.virtual_substitution import vs_eliminate

x = poly_var("x")
y = poly_var("y")
z = poly_var("z")


def cond(poly, op):
    return SignCond(poly, op)


class TestLinearParametric:
    def test_parametric_coefficient(self):
        # exists z: y*z = 1  iff  y != 0 (over the reals)
        dnf = vs_eliminate([cond(y * z - 1, "=")], "z")
        assert dnf_holds(dnf, {"y": 2})
        assert dnf_holds(dnf, {"y": -3})
        assert not dnf_holds(dnf, {"y": 0})

    def test_parametric_bounds(self):
        # exists z: y*z < 1 and z > 0:
        #   y <= 0: any small z works -> true
        #   y > 0: z in (0, 1/y) nonempty -> true
        dnf = vs_eliminate([cond(y * z - 1, "<"), cond(-z, "<")], "z")
        for value in (-2, 0, 1, 5):
            assert dnf_holds(dnf, {"y": value}), value

    def test_infeasible_parametric(self):
        # exists z: y*z < 0 and y = 0 is false
        dnf = vs_eliminate([cond(y * z, "<"), cond(y, "=")], "z")
        assert not dnf_holds(dnf, {"y": 0})


class TestQuadratic:
    def test_sum_of_squares(self):
        # exists z: z^2 + 1 <= 0 is false
        dnf = vs_eliminate([cond(z * z + 1, "<=")], "z")
        assert dnf == [] or not dnf_holds(dnf, {})

    def test_square_root_existence(self):
        # exists z: z^2 = x  iff  x >= 0
        dnf = vs_eliminate([cond(z * z - x, "=")], "z")
        assert dnf_holds(dnf, {"x": 4})
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": Fraction(1, 2)})
        assert not dnf_holds(dnf, {"x": -1})

    def test_discriminant_condition(self):
        # exists z: z^2 + x*z + 1 = 0  iff  x^2 >= 4
        dnf = vs_eliminate([cond(z * z + x * z + 1, "=")], "z")
        assert dnf_holds(dnf, {"x": 3})
        assert dnf_holds(dnf, {"x": -2})
        assert not dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": 1})

    def test_circle_projection(self):
        # exists z: x^2 + z^2 - 1 = 0  iff  -1 <= x <= 1
        dnf = vs_eliminate([cond(x * x + z * z - 1, "=")], "z")
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": 1})
        assert dnf_holds(dnf, {"x": Fraction(-1, 2)})
        assert not dnf_holds(dnf, {"x": 2})
        assert not dnf_holds(dnf, {"x": Fraction(-3, 2)})

    def test_open_disk_projection(self):
        # exists z: x^2 + z^2 < 1  iff  -1 < x < 1
        dnf = vs_eliminate([cond(x * x + z * z - 1, "<")], "z")
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": Fraction(99, 100)})
        assert not dnf_holds(dnf, {"x": 1})
        assert not dnf_holds(dnf, {"x": -1})

    def test_parabola_strict_region(self):
        # exists z: z^2 < x  iff  x > 0
        dnf = vs_eliminate([cond(z * z - x, "<")], "z")
        assert dnf_holds(dnf, {"x": 1})
        assert not dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": -1})

    def test_two_circles_intersection(self):
        # exists z: x^2 + z^2 <= 1 and (x-1)^2 + z^2 <= 1: x in [0... actually
        # both circles overlap for x in [0, 1]; boundary points included
        f1 = x * x + z * z - 1
        f2 = (x - 1) * (x - 1) + z * z - 1
        dnf = vs_eliminate([cond(f1, "<="), cond(f2, "<=")], "z")
        assert dnf_holds(dnf, {"x": Fraction(1, 2)})
        assert dnf_holds(dnf, {"x": 0})
        assert dnf_holds(dnf, {"x": 1})
        assert not dnf_holds(dnf, {"x": Fraction(3, 2)})
        assert not dnf_holds(dnf, {"x": Fraction(-1, 2)})

    def test_disequality(self):
        # exists z: z^2 = x and z != 0  iff  x > 0
        dnf = vs_eliminate([cond(z * z - x, "="), cond(z, "!=")], "z")
        assert dnf_holds(dnf, {"x": 4})
        assert not dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": -4})


class TestDegreeLimit:
    def test_cubic_rejected(self):
        with pytest.raises(UnsupportedEliminationError):
            vs_eliminate([cond(z * z * z - x, "=")], "z")

    def test_variable_absent(self):
        dnf = vs_eliminate([cond(x - 1, "<")], "z")
        assert dnf_holds(dnf, {"x": 0})
        assert not dnf_holds(dnf, {"x": 2})


@st.composite
def quadratic_system(draw):
    conds = []
    for _ in range(draw(st.integers(1, 3))):
        a = draw(st.integers(-2, 2))
        b = draw(st.integers(-2, 2))
        cx = draw(st.integers(-1, 1))
        const = draw(st.integers(-3, 3))
        op = draw(st.sampled_from(["<", "<=", "=", "!="]))
        poly = a * z * z + b * z + cx * x + const
        if "z" not in poly.variables():
            continue
        conds.append(SignCond(poly, op))
    return conds


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(quadratic_system(), st.integers(-4, 4))
    def test_agrees_with_numeric_search(self, conds, x_value):
        dnf = vs_eliminate(conds, "z")
        holds = dnf_holds(dnf, {"x": x_value})
        # numeric witness search over a dense rational grid including all
        # rational boundary candidates
        candidates = set()

        for numerator in range(-60, 61):
            candidates.add(Fraction(numerator, 6))
        candidates.update([Fraction(10**4), Fraction(-(10**4))])
        # include exact quadratic roots when rational
        for c in conds:
            coeffs = c.poly.coefficients_in("z")
            while len(coeffs) < 3:
                coeffs.append(poly_var("z") * 0)
            c0 = coeffs[0].evaluate({"x": x_value})
            c1 = coeffs[1].evaluate({"x": x_value}) if not coeffs[1].is_zero() else Fraction(0)
            c2 = coeffs[2].evaluate({"x": x_value}) if not coeffs[2].is_zero() else Fraction(0)
            if c2 == 0 and c1 != 0:
                candidates.add(-c0 / c1)
            elif c2 != 0:
                disc = c1 * c1 - 4 * c2 * c0
                if disc >= 0:
                    root = _fraction_sqrt(disc)
                    if root is not None:
                        candidates.add((-c1 + root) / (2 * c2))
                        candidates.add((-c1 - root) / (2 * c2))
        witness = any(
            all(c.evaluate({"x": x_value, "z": candidate}) for c in conds)
            for candidate in candidates
        )
        if witness:
            assert holds, f"VS missed witness for {conds} at x={x_value}"
        # the converse cannot be checked exactly with a finite grid when the
        # only witnesses are irrational *isolated* points; strict
        # inequalities always have an interval of witnesses the grid can
        # hit, so check the easy direction too in that case (weak pairs
        # don't qualify: p <= 0 and -p <= 0 conjoin to p = 0, whose only
        # witnesses may be irrational isolated roots)
        if holds and all(c.op == "<" for c in conds):
            assert witness or self._interval_witness(conds, x_value)

    @staticmethod
    def _interval_witness(conds, x_value):
        # inequalities define a finite union of intervals; scan a finer grid
        for numerator in range(-2000, 2001):
            candidate = Fraction(numerator, 100)
            if all(c.evaluate({"x": x_value, "z": candidate}) for c in conds):
                return True
        return False


def _fraction_sqrt(value: Fraction):
    """Exact square root of a Fraction, or None."""
    import math

    if value < 0:
        return None
    num = math.isqrt(value.numerator)
    den = math.isqrt(value.denominator)
    if num * num == value.numerator and den * den == value.denominator:
        return Fraction(num, den)
    return None
