"""Repo-wide test plumbing: hypothesis profiles and seed replay info.

Two hypothesis profiles drive the property suites at different depths:

* ``ci`` (default): fast smoke depth for every pull request;
* ``deep``: the nightly depth (``REPRO_HYPOTHESIS_PROFILE=deep``).

Tests that pin their own ``@settings`` keep them; the profile only sets
the defaults.  Every failing test gets a report section naming the base
conformance seed, so ``REPRO_SEED=<n> pytest ...`` replays the exact run.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.conformance.generators import SEED_ENV_VAR, resolve_seed

settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.register_profile(
    "deep",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def base_seed() -> int:
    """The run's base seed (REPRO_SEED when set, else 0)."""
    return resolve_seed(0)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            (
                "conformance seed",
                f"base seed {resolve_seed(0)} "
                f"(override with {SEED_ENV_VAR}=<n> to replay; per-case "
                "seeds are printed in the assertion message)",
            )
        )
