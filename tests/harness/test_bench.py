"""The ``python -m repro bench`` suite: records, fixpoint gate, regression check."""

import json

import pytest

from repro.harness import bench
from repro.harness.bench import check_regression, main


@pytest.fixture()
def sink(tmp_path, monkeypatch):
    target = tmp_path / "bench.json"
    monkeypatch.setenv("REPRO_BENCH_JSON", str(target))
    return target


#: a tiny profile so the suite stays fast under pytest
_TINY = {
    "dense": [6, 8],
    "equality": [6],
    "boolean": 4,
    "econfig": 8,
    "ivm": [8],
    "sharded": 8,
    # 32, not smaller: the --check gate's 5x floor vs the quadratic full
    # closure only clears with comfortable margin from this size up
    "magic": 32,
}


class TestBenchSuite:
    def test_smoke_profile_records_all_workloads(self, sink, monkeypatch):
        monkeypatch.setitem(bench.PROFILES, "smoke", _TINY)
        assert main(["--profile", "smoke"]) == 0
        document = json.loads(sink.read_text())
        records = document["records"]
        assert set(records) >= {
            "engine_tc_dense[smoke]",
            "engine_tc_equality[smoke]",
            "engine_tc_boolean[smoke]",
            "equality_econfig_baseline[smoke]",
            "compile_stats[smoke]",
        }
        dense = records["engine_tc_dense[smoke]"]
        largest = dense["per_size"][str(max(_TINY["dense"]))]
        assert largest["identical_fixpoints"] is True
        assert set(largest["columns"]) == {
            "all_on",
            "all_off",
            "no_join_planner",
            "no_index_probes",
            "no_parallel",
            "no_compile",
        }
        assert largest["speedup_compile"] > 0
        assert records["equality_econfig_baseline[smoke]"]["agree"] is True
        cache = records["compile_stats[smoke]"]
        assert cache["setup_speedup_warm"] >= 5
        assert cache["cold_setup_s"] > cache["warm_setup_s"] > 0
        ivm = records["ivm_stats[smoke]"]
        cell = ivm["per_size"][str(max(_TINY["ivm"]))]
        assert cell["identical_fixpoints"] is True
        assert cell["maintained_s"] > 0 and cell["scratch_s"] > 0
        assert cell["ivm_derived_added"] == max(_TINY["ivm"]) + 1
        sharded = records["sharded_stats[smoke]"]
        assert sharded["identical_fixpoints"] is True
        assert sharded["degraded"] is False
        assert sharded["shard_rounds"] > 0
        magic = records["magic_stats[smoke]"]
        assert magic["identical_answers"] is True
        assert magic["warm_plan_hit"] is True
        assert magic["cone_tuples"] < magic["full_tuples"]

    def test_check_passes_against_own_baseline(self, sink, monkeypatch):
        monkeypatch.setitem(bench.PROFILES, "smoke", _TINY)
        assert main(["--profile", "smoke"]) == 0
        # a run checked against its own freshly-written numbers at a huge
        # threshold must pass
        assert (
            main(["--profile", "smoke", "--check", "95", "--baseline", str(sink)])
            == 0
        )


class TestRegressionCheck:
    def _doc(self, ratio):
        return {"records": {"engine_tc_dense": {"speedup_all_on": ratio}}}

    def test_regression_detected(self):
        failures = check_regression(self._doc(1.0), self._doc(4.0), 25)
        assert len(failures) == 1
        assert "engine_tc_dense" in failures[0]

    def test_within_threshold_passes(self):
        assert check_regression(self._doc(3.2), self._doc(4.0), 25) == []

    def test_improvement_passes(self):
        assert check_regression(self._doc(6.0), self._doc(4.0), 25) == []

    def test_missing_fresh_record_ignored(self):
        fresh = {"records": {}}
        assert check_regression(fresh, self._doc(4.0), 25) == []

    def test_non_engine_records_ignored(self):
        baseline = {"records": {"datalog_dense_scaling": {"speedup_all_on": 9.9}}}
        assert check_regression({"records": {}}, baseline, 25) == []

    def test_compile_ratio_gates_independently(self):
        fresh = {
            "records": {"engine_tc_dense": {"speedup_all_on": 4.0, "speedup_compile": 1.0}}
        }
        baseline = {
            "records": {"engine_tc_dense": {"speedup_all_on": 4.0, "speedup_compile": 2.0}}
        }
        failures = check_regression(fresh, baseline, 25)
        assert len(failures) == 1
        assert "::compile" in failures[0]

    def test_plan_cache_floor_enforced(self):
        fresh = {"records": {"compile_stats[full]": {"setup_speedup_warm": 3.2}}}
        failures = check_regression(fresh, {"records": {}}, 25)
        assert failures == [
            "compile_stats[full]: warm plan-cache setup speedup 3.2x below the 5x floor"
        ]

    def test_plan_cache_floor_passes(self):
        fresh = {"records": {"compile_stats[full]": {"setup_speedup_warm": 12.0}}}
        assert check_regression(fresh, {"records": {}}, 25) == []

    def test_ivm_floor_enforced_at_gated_sizes(self):
        fresh = {
            "records": {
                "ivm_stats[full]": {
                    "per_size": {
                        "8": {"speedup_maintained": 2.0},   # below min N: exempt
                        "32": {"speedup_maintained": 3.0},  # gated: fails
                        "64": {"speedup_maintained": 9.0},  # gated: passes
                    }
                }
            }
        }
        failures = check_regression(fresh, {"records": {}}, 25)
        assert failures == [
            "ivm_stats[full][N=32]: maintained-vs-scratch speedup 3.0x "
            "below the 5x floor"
        ]
