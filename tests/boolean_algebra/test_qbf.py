"""Tests for Lemma 5.9 and the Theorem 5.11 Datalog reduction."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.qbf import (
    aexpr_closure,
    build_circuit,
    decide_qbf_via_datalog,
    decide_qbf_via_lemma59,
    evaluate_circuit,
    formula_to_term,
    qbf_truth,
    replace_constant,
)
from repro.tableaux.reductions import BNode, BVarRef


def x(i, neg=False):
    return BVarRef("x", i, neg)


def y(j, neg=False):
    return BVarRef("y", j, neg)


CASES = [
    # forall ys exists xs: psi(xs, ys) = 0  (psi evaluates to false)
    (x(0), 1, 1, True),  # choose x0 = 0
    (BNode("or", x(0), x(0, True)), 1, 0, False),  # tautology never 0
    (y(0), 0, 1, False),  # at y0 = 1 the term is 1, no x to choose
    (BNode("and", x(0), y(0)), 1, 1, True),  # x0 = 0 kills it
    (
        # (x0 or y0) and (x0' or y0'): equals 0 iff x0 != ... x0 = y0' works
        BNode("and", BNode("or", x(0), y(0)), BNode("or", x(0, True), y(0, True))),
        1,
        1,
        True,
    ),
    (
        # x0 xor y0 (expanded): zero iff x0 = y0 -- choose x0 = y0
        BNode("or", BNode("and", x(0), y(0, True)), BNode("and", x(0, True), y(0))),
        1,
        1,
        True,
    ),
]


class TestCircuit:
    def test_value_matches_term_evaluation(self):
        formula = BNode("or", BNode("and", x(0), y(0, True)), x(1, True))
        algebra = FreeBooleanAlgebra(("A0", "B0", "B1"))
        symbols = {name: algebra.generator(i) for i, name in enumerate(algebra.generator_names)}
        circuit = build_circuit(formula)
        via_circuit = evaluate_circuit(circuit, algebra, symbols)
        # direct evaluation
        term = formula_to_term(formula, x_as="const", y_as="const")
        constants = {"A0": symbols["A0"], "B0": symbols["B0"], "B1": symbols["B1"]}
        direct = term.evaluate(algebra, constants, {})
        assert via_circuit == direct


class TestAexpr:
    def test_subalgebra_size(self):
        algebra = FreeBooleanAlgebra(("A0", "A1", "B0"))
        closure = aexpr_closure(algebra, [0, 1])
        assert len(closure) == 16  # 2^(2^2): the A-generated subalgebra

    def test_zero_generators(self):
        algebra = FreeBooleanAlgebra(("B0",))
        closure = aexpr_closure(algebra, [])
        assert closure == {algebra.zero(), algebra.one()}


class TestReplace:
    def test_replace_is_substitution(self):
        algebra = FreeBooleanAlgebra(("A0", "B0"))
        a0, b0 = algebra.generator(0), algebra.generator(1)
        element = algebra.join(algebra.meet(a0, b0), algebra.complement(b0))
        replaced = replace_constant(algebra, element, 1, algebra.one())
        # B0 -> 1: (A0 & 1) | 0 = A0
        assert replaced == a0
        replaced_zero = replace_constant(algebra, element, 1, algebra.zero())
        # B0 -> 0: 0 | 1 = 1
        assert replaced_zero == algebra.one()


class TestDeciders:
    @pytest.mark.parametrize("formula,n_x,n_y,expected", CASES)
    def test_brute_force(self, formula, n_x, n_y, expected):
        assert qbf_truth(formula, n_x, n_y) == expected

    @pytest.mark.parametrize("formula,n_x,n_y,expected", CASES)
    def test_lemma_59(self, formula, n_x, n_y, expected):
        assert decide_qbf_via_lemma59(formula, n_x, n_y) == expected

    @pytest.mark.parametrize("formula,n_x,n_y,expected", CASES)
    def test_theorem_511_datalog(self, formula, n_x, n_y, expected):
        assert decide_qbf_via_datalog(formula, n_x, n_y) == expected


@st.composite
def small_formula(draw, n_x=2, n_y=1):
    depth = draw(st.integers(0, 2))

    def build(d):
        if d == 0:
            kind = draw(st.sampled_from(["x"] * n_x + ["y"] * n_y))
            index = draw(st.integers(0, (n_x if kind == "x" else n_y) - 1))
            return BVarRef(kind, index, draw(st.booleans()))
        op = draw(st.sampled_from(["and", "or"]))
        return BNode(op, build(d - 1), build(d - 1))

    return build(depth)


class TestAgreementProperty:
    @settings(max_examples=20, deadline=None)
    @given(small_formula())
    def test_all_three_deciders_agree(self, formula):
        n_x, n_y = 2, 1
        expected = qbf_truth(formula, n_x, n_y)
        assert decide_qbf_via_lemma59(formula, n_x, n_y) == expected
        assert decide_qbf_via_datalog(formula, n_x, n_y) == expected
