"""Tests for Boole's lemma, boolean Datalog, and the adder/parity examples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.boole import (
    boole_eliminate_table,
    constraint_has_solution,
    solve_constraint,
)
from repro.boolean_algebra.datalog_bool import (
    BodyAtom,
    BooleanDatalogProgram,
    BooleanRule,
    element_as_term,
)
from repro.boolean_algebra.terms import (
    BAnd,
    BConst,
    BNot,
    BOne,
    BOr,
    BVar,
    BXor,
    standard_constants,
    table_evaluate,
    term_table,
)

B1 = FreeBooleanAlgebra.with_generators(1)
B2 = FreeBooleanAlgebra.with_generators(2)


class TestTerms:
    def test_evaluate(self):
        term = BAnd(BVar("x"), BNot(BVar("y")))
        env = {"x": B1.one(), "y": B1.zero()}
        assert term.evaluate(B1, {}, env) == B1.one()

    def test_xor_sugar(self):
        term = BVar("x") ^ BVar("y")
        assert isinstance(term, BXor)
        env = {"x": B1.one(), "y": B1.one()}
        assert term.evaluate(B1, {}, env) == B1.zero()

    def test_substitute(self):
        term = BVar("x") & BVar("y")
        replaced = term.substitute({"x": BOne()})
        assert replaced.variables() == {"y"}

    def test_table_expansion_identity(self):
        # the Boolean expansion evaluates correctly at non-0/1 elements
        term = BXor(BVar("x"), BConst("c0"))
        table = term_table(term, ["x"], B1)
        constants = standard_constants(B1)
        for x_value in B1.all_elements():
            direct = term.evaluate(B1, constants, {"x": x_value})
            via_table = table_evaluate(table, ["x"], B1, {"x": x_value})
            assert direct == via_table

    def test_missing_constant_rejected(self):
        with pytest.raises(ValueError):
            term_table(BConst("unknown"), [], B1)

    def test_variable_out_of_scope_rejected(self):
        with pytest.raises(ValueError):
            term_table(BVar("x"), [], B1)


class TestBoole:
    def test_eliminate_simple(self):
        # exists x . x = 0 is true
        table = term_table(BVar("x"), ["x"], B1)
        reduced, names = boole_eliminate_table(table, ("x",), "x")
        assert names == ()
        assert B1.is_zero(reduced[0])

    def test_has_solution(self):
        # x ^ c0 = 0 has the solution x = c0
        assert constraint_has_solution(BXor(BVar("x"), BConst("c0")), B1)
        # 1 = 0 has none
        assert not constraint_has_solution(BOne(), B1)

    def test_remark_f_conjunction_nonzero(self):
        # c0 & x' | c0' & x: solvable (x = c0) although neither t(0)=c0 nor
        # t(1)=c0' is zero -- the conjunction c0 & c0' is (Remark F)
        term = BOr(
            BAnd(BConst("c0"), BNot(BVar("x"))),
            BAnd(BNot(BConst("c0")), BVar("x")),
        )
        assert constraint_has_solution(term, B1)

    def test_solve_produces_valid_solution(self):
        term = BXor(BVar("x"), BConst("c0"))
        solution = solve_constraint(term, B1)
        assert solution is not None
        value = term.evaluate(B1, standard_constants(B1), solution)
        assert B1.is_zero(value)
        assert solution["x"] == B1.generator(0)

    def test_solve_unsolvable(self):
        assert solve_constraint(BOne(), B1) is None

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_solve_random_interval_constraints(self, a_mask, b_mask, c_mask):
        # constraint (x & a') | (x' & b): solution iff b <= a (interval [b, a])
        a = frozenset(i for i in range(4) if a_mask & (1 << i))
        b = frozenset(i for i in range(4) if b_mask & (1 << i))
        term = BOr(
            BAnd(BVar("x"), BNot(element_as_term(a, B2))),
            BAnd(BNot(BVar("x")), element_as_term(b, B2)),
        )
        solvable = constraint_has_solution(term, B2)
        assert solvable == B2.leq(b, a)
        solution = solve_constraint(term, B2)
        if solvable:
            value = term.evaluate(B2, standard_constants(B2), solution)
            assert B2.is_zero(value)
        else:
            assert solution is None


class TestAdderExample:
    """Example 5.4: the adder built from two half-adders, evaluated bottom-up."""

    def _program(self):
        b0 = FreeBooleanAlgebra()
        program = BooleanDatalogProgram(b0)
        x, y, zv, w = BVar("x"), BVar("y"), BVar("z"), BVar("w")
        # Halfadder(x, y, z, w) :- (x ^ y ^ z) | ((x & y) ^ w) = 0
        constraint = BOr(BXor(BXor(x, y), zv), BXor(BAnd(x, y), w))
        program.add_fact("Halfadder", ["x", "y", "z", "w"], constraint)
        s1, c1, c2 = BVar("s1"), BVar("c1"), BVar("c2")
        rule = BooleanRule(
            head_predicate="Adder",
            head_arguments=("x", "y", "c", "s", "d"),
            body=(
                BodyAtom("Halfadder", ("x", "y", "s1", "c1")),
                BodyAtom("Halfadder", ("s1", "c", "s", "c2")),
            ),
            constraint=BXor(BVar("d"), BOr(c1, c2)),
        )
        program.add_rule(rule)
        return program

    def test_adder_truth_table(self):
        program = self._program()
        facts = program.evaluate()
        adder_facts = facts["Adder"]
        assert len(adder_facts) == 1
        (fact,) = adder_facts
        b0 = program.algebra
        names = fact.variable_names()
        # check the full adder truth table: s = x^y^c, d = majority(x,y,c)
        for mask in range(8):
            x_in = b0.from_bool(bool(mask & 1))
            y_in = b0.from_bool(bool(mask & 2))
            c_in = b0.from_bool(bool(mask & 4))
            s_expected = b0.xor(b0.xor(x_in, y_in), c_in)
            d_expected = b0.join(
                b0.join(b0.meet(x_in, y_in), b0.meet(x_in, c_in)),
                b0.meet(y_in, c_in),
            )
            env = dict(
                zip(names, [x_in, y_in, c_in, s_expected, d_expected])
            )
            value = table_evaluate(fact.table, names, b0, env)
            assert b0.is_zero(value), f"adder fails on input {mask:03b}"
            # a wrong sum bit must violate the constraint
            env_bad = dict(env)
            env_bad[names[3]] = b0.complement(s_expected)
            assert not b0.is_zero(table_evaluate(fact.table, names, b0, env_bad))


class TestParityExample:
    """Examples 5.7/5.8: parity of n bits, recursive over an ordered chain."""

    def test_parametric_parity_chain(self):
        m = 3  # three parametric input bits
        algebra = FreeBooleanAlgebra.with_generators(m)
        program = BooleanDatalogProgram(algebra)
        # chain relations Next(i, j) and Input(i, x) use *positions* encoded
        # as boolean tuples; we keep positions boolean by unary encoding:
        # Parity_i relations instead (one per position), mirroring Example
        # 5.7's fixed-n formulation
        # Parity1(x) :- x ^ c0 = 0
        program.add_fact("Parity1", ["x"], BXor(BVar("x"), BConst("c0")))
        for i in range(2, m + 1):
            rule = BooleanRule(
                head_predicate=f"Parity{i}",
                head_arguments=("x",),
                body=(BodyAtom(f"Parity{i - 1}", ("y",)),),
                constraint=BXor(BVar("x"), BXor(BVar("y"), BConst(f"c{i - 1}"))),
            )
            program.add_rule(rule)
        facts = program.evaluate()
        final = facts[f"Parity{m}"]
        assert len(final) == 1
        (fact,) = final
        # the unique solution of the parity constraint is c0 ^ c1 ^ c2
        expected = algebra.xor(
            algebra.xor(algebra.generator(0), algebra.generator(1)),
            algebra.generator(2),
        )
        value = table_evaluate(fact.table, ("_0",), algebra, {"_0": expected})
        assert algebra.is_zero(value)
        wrong = algebra.complement(expected)
        assert not algebra.is_zero(
            table_evaluate(fact.table, ("_0",), algebra, {"_0": wrong})
        )

    def test_remark_g_interpretation_commutes(self):
        # parametric evaluation then interpretation == evaluation of the
        # interpreted instance (Remark G)
        algebra = FreeBooleanAlgebra.with_generators(2)
        program = BooleanDatalogProgram(algebra)
        program.add_fact(
            "R", ["x"], BXor(BVar("x"), BAnd(BConst("c0"), BConst("c1")))
        )
        rule = BooleanRule(
            head_predicate="S",
            head_arguments=("x",),
            body=(BodyAtom("R", ("x",)),),
        )
        program.add_rule(rule)
        facts = program.evaluate()
        (fact,) = facts["S"]
        b0 = FreeBooleanAlgebra()
        for bits in range(4):
            images = [b0.from_bool(bool(bits & 1)), b0.from_bool(bool(bits & 2))]
            interpreted = program.interpret_fact(fact, images, b0)
            expected = b0.meet(images[0], images[1])
            value = table_evaluate(
                interpreted.table, ("_0",), b0, {"_0": expected}
            )
            assert b0.is_zero(value)


class TestGroundFacts:
    def test_add_ground_fact_roundtrip(self):
        program = BooleanDatalogProgram(B1)
        element = B1.generator(0)
        fact = program.add_ground_fact("R", [element, B1.one()])
        names = fact.variable_names()
        good = table_evaluate(
            fact.table, names, B1, {"_0": element, "_1": B1.one()}
        )
        assert B1.is_zero(good)
        bad = table_evaluate(
            fact.table, names, B1, {"_0": B1.zero(), "_1": B1.one()}
        )
        assert not B1.is_zero(bad)

    def test_termination_on_cyclic_rules(self):
        # S(x) :- S(x) must terminate by canonical-table dedup (Theorem 5.6)
        program = BooleanDatalogProgram(B1)
        program.add_fact("S", ["x"], BXor(BVar("x"), BConst("c0")))
        program.add_rule(
            BooleanRule(
                head_predicate="S",
                head_arguments=("x",),
                body=(BodyAtom("S", ("x",)),),
            )
        )
        facts = program.evaluate()
        assert len(facts["S"]) == 1
