"""Tests for free boolean algebras B_m (Section 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean_algebra.algebra import FreeBooleanAlgebra


class TestStructure:
    def test_b0_is_two_valued(self):
        b0 = FreeBooleanAlgebra()
        assert b0.size == 2
        assert b0.zero() != b0.one()
        assert list(b0.all_elements()) == [frozenset(), frozenset({0})]

    def test_size_formula(self):
        # |B_m| = 2^(2^m)  (Section 5.1)
        for m, size in [(0, 2), (1, 4), (2, 16), (3, 256)]:
            assert FreeBooleanAlgebra.with_generators(m).size == size

    def test_generators_distinct_and_free(self):
        b2 = FreeBooleanAlgebra.with_generators(2)
        c0, c1 = b2.generator(0), b2.generator(1)
        assert c0 != c1
        assert c0 != b2.zero() and c0 != b2.one()
        # free: no nontrivial relation, e.g. c0 & c1 is none of 0, c0, c1, 1
        meet = b2.meet(c0, c1)
        assert meet not in (b2.zero(), b2.one(), c0, c1)

    def test_generator_out_of_range(self):
        with pytest.raises(IndexError):
            FreeBooleanAlgebra.with_generators(1).generator(1)


ALGEBRA = FreeBooleanAlgebra.with_generators(2)
ELEMENTS = st.sets(st.integers(0, 3), max_size=4).map(frozenset)


class TestAxioms:
    """The nine boolean algebra axioms of Section 5.1, property-checked."""

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS, ELEMENTS)
    def test_commutativity(self, a, b):
        assert ALGEBRA.join(a, b) == ALGEBRA.join(b, a)
        assert ALGEBRA.meet(a, b) == ALGEBRA.meet(b, a)

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS, ELEMENTS, ELEMENTS)
    def test_distributivity(self, a, b, c):
        assert ALGEBRA.join(a, ALGEBRA.meet(b, c)) == ALGEBRA.meet(
            ALGEBRA.join(a, b), ALGEBRA.join(a, c)
        )
        assert ALGEBRA.meet(a, ALGEBRA.join(b, c)) == ALGEBRA.join(
            ALGEBRA.meet(a, b), ALGEBRA.meet(a, c)
        )

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS)
    def test_complement_laws(self, a):
        assert ALGEBRA.join(a, ALGEBRA.complement(a)) == ALGEBRA.one()
        assert ALGEBRA.meet(a, ALGEBRA.complement(a)) == ALGEBRA.zero()

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS)
    def test_identity_laws(self, a):
        assert ALGEBRA.join(a, ALGEBRA.zero()) == a
        assert ALGEBRA.meet(a, ALGEBRA.one()) == a

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS, ELEMENTS)
    def test_xor_definition(self, a, b):
        expected = ALGEBRA.join(
            ALGEBRA.meet(a, ALGEBRA.complement(b)),
            ALGEBRA.meet(ALGEBRA.complement(a), b),
        )
        assert ALGEBRA.xor(a, b) == expected

    @settings(max_examples=60, deadline=None)
    @given(ELEMENTS, ELEMENTS)
    def test_leq_is_meet_order(self, a, b):
        assert ALGEBRA.leq(a, b) == (ALGEBRA.meet(a, b) == a)


class TestInterpretation:
    def test_interpret_generators(self):
        b1 = FreeBooleanAlgebra.with_generators(1)
        b2 = FreeBooleanAlgebra.with_generators(2)
        # map the single generator of B_1 to c0 & c1 in B_2
        image = b2.meet(b2.generator(0), b2.generator(1))
        result = b1.interpret(b1.generator(0), [image], b2)
        assert result == image

    def test_interpretation_is_homomorphism(self):
        b2 = FreeBooleanAlgebra.with_generators(2)
        b1 = FreeBooleanAlgebra.with_generators(1)
        images = [b1.generator(0), b1.complement(b1.generator(0))]
        for a in list(b2.all_elements())[:8]:
            for b in list(b2.all_elements())[:8]:
                left = b2.interpret(b2.meet(a, b), images, b1)
                right = b1.meet(
                    b2.interpret(a, images, b1), b2.interpret(b, images, b1)
                )
                assert left == right

    def test_wrong_image_count(self):
        b1 = FreeBooleanAlgebra.with_generators(1)
        with pytest.raises(ValueError):
            b1.interpret(b1.one(), [], b1)


class TestRendering:
    def test_dnf_string(self):
        b1 = FreeBooleanAlgebra.with_generators(1)
        assert b1.dnf_string(b1.zero()) == "0"
        assert b1.dnf_string(b1.one()) == "1"
        assert "c0" in b1.dnf_string(b1.generator(0))
