"""Tests for the computational-geometry baselines (Examples 1.1, 2.1, 2.2)."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.geometry.convex_hull import convex_hull_graham, convex_hull_naive, in_triangle
from repro.geometry.rectangles import (
    Rect,
    intersecting_pairs_bruteforce,
    intersecting_pairs_sweepline,
)
from repro.geometry.voronoi import voronoi_dual_naive
from repro.workloads.spatial import random_points_general_position, random_rectangles


def F(value):
    return Fraction(value)


class TestInTriangle:
    def test_inside(self):
        assert in_triangle((F(1), F(1)), (F(0), F(0)), (F(4), F(0)), (F(0), F(4)))

    def test_outside(self):
        assert not in_triangle((F(5), F(5)), (F(0), F(0)), (F(4), F(0)), (F(0), F(4)))

    def test_boundary_counts_as_inside(self):
        assert in_triangle((F(2), F(0)), (F(0), F(0)), (F(4), F(0)), (F(0), F(4)))

    def test_orientation_independent(self):
        # clockwise triangle
        assert in_triangle((F(1), F(1)), (F(0), F(0)), (F(0), F(4)), (F(4), F(0)))


class TestConvexHull:
    def test_square_with_center(self):
        points = [(F(0), F(0)), (F(4), F(0)), (F(4), F(4)), (F(0), F(4)), (F(2), F(1))]
        naive = set(convex_hull_naive(points))
        graham = set(convex_hull_graham(points))
        expected = set(points) - {(F(2), F(1))}
        assert naive == expected
        assert graham == expected

    def test_triangle(self):
        points = [(F(0), F(0)), (F(3), F(0)), (F(0), F(3))]
        assert set(convex_hull_naive(points)) == set(points)
        assert set(convex_hull_graham(points)) == set(points)

    def test_small_inputs(self):
        assert convex_hull_graham([]) == []
        single = [(F(1), F(2))]
        assert convex_hull_graham(single) == single
        assert convex_hull_naive(single) == single

    @settings(max_examples=30, deadline=None)
    @given(st.integers(4, 12), st.integers(0, 1000))
    def test_naive_matches_graham_general_position(self, n, seed):
        points = random_points_general_position(n, seed=seed, universe=200)
        assert set(convex_hull_naive(points)) == set(convex_hull_graham(points))

    def test_hull_is_counterclockwise(self):
        points = [(F(0), F(0)), (F(4), F(0)), (F(4), F(4)), (F(0), F(4)), (F(1), F(2))]
        hull = convex_hull_graham(points)
        from repro.geometry.convex_hull import _orient

        for i in range(len(hull)):
            a, b, c = hull[i], hull[(i + 1) % len(hull)], hull[(i + 2) % len(hull)]
            assert _orient(a, b, c) > 0


class TestRectangles:
    def test_basic(self):
        rects = [
            Rect(1, F(0), F(0), F(2), F(2)),
            Rect(2, F(1), F(1), F(3), F(3)),
            Rect(3, F(10), F(10), F(11), F(11)),
        ]
        expected = {(1, 2), (2, 1)}
        assert intersecting_pairs_bruteforce(rects) == expected
        assert intersecting_pairs_sweepline(rects) == expected

    def test_touching_edges_count(self):
        rects = [Rect(1, F(0), F(0), F(1), F(1)), Rect(2, F(1), F(0), F(2), F(1))]
        assert intersecting_pairs_bruteforce(rects) == {(1, 2), (2, 1)}
        assert intersecting_pairs_sweepline(rects) == {(1, 2), (2, 1)}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 40), st.integers(0, 500))
    def test_sweepline_matches_bruteforce(self, n, seed):
        rects = random_rectangles(n, seed=seed, universe=120, max_side=30)
        assert intersecting_pairs_sweepline(rects) == intersecting_pairs_bruteforce(
            rects
        )


class TestVoronoiDual:
    def test_collinear_points(self):
        points = [(F(0), F(0)), (F(1), F(0)), (F(2), F(0))]
        dual = voronoi_dual_naive(points)
        assert ((F(0), F(0)), (F(1), F(0))) in dual
        assert ((F(1), F(0)), (F(2), F(0))) in dual
        # the far pair is separated by the middle point
        assert ((F(0), F(0)), (F(2), F(0))) not in dual

    def test_triangle_all_adjacent(self):
        points = [(F(0), F(0)), (F(4), F(0)), (F(2), F(3))]
        dual = voronoi_dual_naive(points)
        # every pair of three points is Voronoi-adjacent
        assert len(dual) == 6

    def test_square_diagonals(self):
        points = [(F(0), F(0)), (F(2), F(0)), (F(2), F(2)), (F(0), F(2))]
        dual = voronoi_dual_naive(points)
        # sides are adjacent
        assert ((F(0), F(0)), (F(2), F(0))) in dual
        # diagonals: the midpoint is equidistant to all four; no point on the
        # diagonal is strictly closer to a third point than to both ends?
        # For the square, the diagonal's midpoint is equidistant, and on
        # either side of it one of the other corners ties but never *strictly*
        # dominates -- by the strict definition the diagonal is adjacent.
        assert ((F(0), F(0)), (F(2), F(2))) in dual
